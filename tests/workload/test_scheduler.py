"""Batch scheduler: states, dependencies, mail events, the mitigations."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NotFoundError, ValidationError
from repro.workload.scheduler import BatchScheduler, JobState, MailEvent


@pytest.fixture
def clock():
    return SimulatedClock(1_000_000.0)


@pytest.fixture
def scheduler(clock):
    return BatchScheduler(clock=clock, nodes=2, rng=random.Random(1))


class TestLifecycle:
    def test_submit_pending(self, scheduler):
        job = scheduler.submit("alice", "sim", wall_seconds=3600)
        assert job.state is JobState.PENDING

    def test_runs_and_completes(self, scheduler, clock):
        job = scheduler.submit("alice", "sim", wall_seconds=3600)
        scheduler.tick()
        assert scheduler.get(job.job_id).state is JobState.RUNNING
        clock.advance(3600)
        scheduler.tick()
        assert scheduler.get(job.job_id).state is JobState.COMPLETED

    def test_node_limit_respected(self, scheduler, clock):
        jobs = [scheduler.submit("alice", f"j{i}", 600) for i in range(4)]
        scheduler.tick()
        states = [scheduler.get(j.job_id).state for j in jobs]
        assert states.count(JobState.RUNNING) == 2
        assert states.count(JobState.PENDING) == 2

    def test_fifo_order(self, scheduler, clock):
        first = scheduler.submit("alice", "first", 600)
        clock.advance(1)
        second = scheduler.submit("bob", "second", 600)
        clock.advance(1)
        third = scheduler.submit("carol", "third", 600)
        scheduler.tick()
        assert scheduler.get(first.job_id).state is JobState.RUNNING
        assert scheduler.get(second.job_id).state is JobState.RUNNING
        assert scheduler.get(third.job_id).state is JobState.PENDING

    def test_cancel(self, scheduler):
        job = scheduler.submit("alice", "sim", 3600)
        scheduler.cancel(job.job_id)
        assert job.state is JobState.CANCELLED

    def test_failure_probability(self, clock):
        scheduler = BatchScheduler(clock=clock, nodes=100, rng=random.Random(2))
        jobs = [
            scheduler.submit("alice", f"j{i}", 60, fail_probability=0.5)
            for i in range(100)
        ]
        scheduler.run_until_idle(step=60)
        failed = sum(1 for j in jobs if j.state is JobState.FAILED)
        assert 25 <= failed <= 75

    def test_unknown_job(self, scheduler):
        with pytest.raises(NotFoundError):
            scheduler.get("job-999999")

    def test_zero_nodes_rejected(self, clock):
        with pytest.raises(ValidationError):
            BatchScheduler(clock=clock, nodes=0)

    def test_run_until_idle(self, scheduler):
        for i in range(5):
            scheduler.submit("alice", f"j{i}", 600)
        scheduler.run_until_idle(step=60)
        assert scheduler.states() == {"completed": 5}


class TestDependencies:
    def test_afterok_waits(self, scheduler, clock):
        first = scheduler.submit("alice", "stage1", 600)
        second = scheduler.submit("alice", "stage2", 600, depends_on=[first.job_id])
        scheduler.tick()
        assert second.state is JobState.PENDING
        clock.advance(600)
        scheduler.tick()  # stage1 completes; stage2 eligible
        scheduler.tick()
        assert second.state is JobState.RUNNING

    def test_chain_of_dependencies(self, scheduler):
        """The paper's mitigation: a whole campaign submitted up front,
        no interactive decisions (= no SSH logins) in between."""
        previous = None
        jobs = []
        for i in range(6):
            job = scheduler.submit(
                "alice", f"stage{i}", 600,
                depends_on=[previous.job_id] if previous else None,
            )
            jobs.append(job)
            previous = job
        scheduler.run_until_idle(step=60)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # Stages ran strictly in order.
        for earlier, later in zip(jobs, jobs[1:]):
            assert later.started_at >= earlier.finished_at

    def test_failed_dependency_cancels(self, scheduler, clock):
        first = scheduler.submit("alice", "stage1", 600, fail_probability=1.0)
        second = scheduler.submit("alice", "stage2", 600, depends_on=[first.job_id])
        scheduler.run_until_idle(step=60)
        assert first.state is JobState.FAILED
        assert second.state is JobState.CANCELLED

    def test_missing_dependency_rejected(self, scheduler):
        with pytest.raises(NotFoundError):
            scheduler.submit("alice", "x", 60, depends_on=["job-424242"])


class TestMailEvents:
    def test_end_mail(self, scheduler, clock):
        scheduler.submit(
            "alice", "sim", 600,
            mail_events={MailEvent.END}, mail_to="alice@utexas.edu",
        )
        scheduler.run_until_idle(step=60)
        inbox = scheduler.mailer.inbox("alice@utexas.edu")
        assert len(inbox) == 1
        assert "END" in inbox[0].subject

    def test_fail_mail(self, scheduler):
        scheduler.submit(
            "alice", "sim", 600, fail_probability=1.0,
            mail_events={MailEvent.FAIL, MailEvent.END}, mail_to="alice@utexas.edu",
        )
        scheduler.run_until_idle(step=60)
        inbox = scheduler.mailer.inbox("alice@utexas.edu")
        assert len(inbox) == 1
        assert "FAIL" in inbox[0].subject

    def test_begin_mail(self, scheduler):
        scheduler.submit(
            "alice", "sim", 600,
            mail_events={MailEvent.BEGIN}, mail_to="alice@utexas.edu",
        )
        scheduler.tick()
        assert "BEGIN" in scheduler.mailer.latest("alice@utexas.edu").subject

    def test_no_mail_without_subscription(self, scheduler):
        scheduler.submit("alice", "sim", 600, mail_to="alice@utexas.edu")
        scheduler.run_until_idle(step=60)
        assert scheduler.mailer.inbox("alice@utexas.edu") == []


class TestPollingVsMail:
    def test_mail_eliminates_polling_traffic(self, scheduler, clock):
        """The Section 5 comparison: a remote cron polling squeue every
        5 minutes vs --mail-type=END.  Count the status queries."""
        scheduler.submit(
            "alice", "longsim", wall_seconds=6 * 3600,
            mail_events={MailEvent.END}, mail_to="alice@utexas.edu",
        )
        polls = 0
        while scheduler.squeue("alice"):
            scheduler.tick()
            polls += 1  # the cron job's SSH login + squeue
            clock.advance(300)
        # Mail user: zero polls needed; the poller burned dozens of logins.
        assert polls >= 60
        assert scheduler.mailer.latest("alice@utexas.edu") is not None
        assert scheduler.mails_sent == 1

"""Determinism guarantees: derived seeds, stream isolation, log digests."""

from repro.simcore import (
    EventLog,
    EventScheduler,
    RngStreams,
    VirtualClock,
    canonical_line,
    derive_seed,
)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(7, "radius", 1) == derive_seed(7, "radius", 1)

    def test_distinct_actors_distinct_seeds(self):
        seeds = {
            derive_seed(7, actor, index)
            for actor in ("radius", "sms", "storage")
            for index in range(10)
        }
        assert len(seeds) == 30

    def test_root_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestRngStreams:
    def test_stream_is_cached(self):
        streams = RngStreams(3)
        assert streams.stream("a") is streams.stream("a")
        assert len(streams) == 1

    def test_numpy_generator_replays(self):
        streams = RngStreams(3)
        a = streams.numpy_generator("day", 4).random(8)
        b = streams.numpy_generator("day", 4).random(8)
        assert (a == b).all()

    def test_numpy_generators_independent_per_actor(self):
        streams = RngStreams(3)
        a = streams.numpy_generator("day", 0).random(8)
        b = streams.numpy_generator("day", 1).random(8)
        assert (a != b).any()


class TestEventLogDigest:
    def test_canonical_line_is_key_sorted_and_compact(self):
        assert canonical_line({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_same_events_same_digest(self):
        logs = []
        for _ in range(2):
            log = EventLog()
            log.append("start", users=10)
            log.append("stop", users=9)
            logs.append(log.digest())
        assert logs[0] == logs[1]

    def test_field_order_does_not_matter(self):
        a = EventLog()
        a.append("x", one=1, two=2)
        b = EventLog()
        b.append("x", two=2, one=1)
        assert a.digest() == b.digest()

    def test_any_difference_changes_digest(self):
        a = EventLog()
        a.append("x", value=1)
        b = EventLog()
        b.append("x", value=2)
        assert a.digest() != b.digest()

    def test_clock_bound_log_stamps_relative_time(self):
        clock = VirtualClock(500.0)
        log = EventLog(clock=clock, epoch=500.0)
        clock.advance(12.0)
        event = log.append("tick")
        assert event["t"] == 12.0


class TestSchedulerDeterminism:
    @staticmethod
    def _run(seed, until):
        scheduler = EventScheduler(clock=VirtualClock(0.0), seed=seed)
        log = EventLog(clock=scheduler.clock)

        def work(actor):
            log.append("work", actor=actor, draw=scheduler.rng(actor).random())

        for i in range(20):
            scheduler.schedule(i * 3.0, work, f"actor{i % 4}")
        for stop in until:
            scheduler.run_until(stop)
        return log.digest()

    def test_same_seed_identical_digest_across_runs(self):
        assert self._run(11, [60.0]) == self._run(11, [60.0])

    def test_resumed_run_matches_continuous_run(self):
        assert self._run(11, [60.0]) == self._run(11, [25.0, 60.0])
        assert self._run(11, [60.0]) == self._run(11, [10.0, 30.0, 60.0])

    def test_different_seed_different_digest(self):
        assert self._run(11, [60.0]) != self._run(12, [60.0])

"""EventScheduler semantics: ordering, cancellation, repeats, draining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import EventScheduler, VirtualClock


def make() -> EventScheduler:
    return EventScheduler(clock=VirtualClock(1000.0), seed=1)


class TestScheduling:
    def test_schedule_fires_in_time_order(self):
        s = make()
        fired = []
        s.schedule(30.0, fired.append, "late")
        s.schedule(10.0, fired.append, "early")
        s.schedule(20.0, fired.append, "middle")
        s.run()
        assert fired == ["early", "middle", "late"]

    def test_same_instant_fires_in_scheduling_order(self):
        s = make()
        fired = []
        for name in ("a", "b", "c", "d"):
            s.schedule(5.0, fired.append, name)
        s.run()
        assert fired == ["a", "b", "c", "d"]

    def test_schedule_at_rejects_past(self):
        s = make()
        with pytest.raises(ValueError):
            s.schedule_at(999.0, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        s = make()
        fired = []
        s.schedule_at(1000.0, fired.append, 1)
        s.run()
        assert fired == [1]

    def test_clock_lands_on_event_times(self):
        s = make()
        seen = []
        s.schedule(7.0, lambda: seen.append(s.clock.now()))
        s.schedule(19.0, lambda: seen.append(s.clock.now()))
        s.run()
        assert seen == [1007.0, 1019.0]

    def test_len_counts_live_events(self):
        s = make()
        s.schedule(1.0, lambda: None)
        h = s.schedule(2.0, lambda: None)
        assert len(s) == 2
        h.cancel()
        assert len(s) == 1

    def test_callback_may_schedule_more(self):
        s = make()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                s.schedule(1.0, chain, depth + 1)

        s.schedule(1.0, chain, 0)
        s.run()
        assert fired == [0, 1, 2, 3]
        assert s.clock.now() == 1004.0


class TestRunUntil:
    def test_only_fires_up_to_timestamp(self):
        s = make()
        fired = []
        s.schedule(10.0, fired.append, "in")
        s.schedule(50.0, fired.append, "out")
        assert s.run_until(1030.0) == 1
        assert fired == ["in"]
        assert s.clock.now() == 1030.0
        assert len(s) == 1

    def test_boundary_event_is_included(self):
        s = make()
        fired = []
        s.schedule(30.0, fired.append, "edge")
        s.run_until(1030.0)
        assert fired == ["edge"]

    def test_split_run_equals_continuous_run(self):
        events = [(3.0, "a"), (9.0, "b"), (9.0, "c"), (21.0, "d")]

        def trace(split):
            s = make()
            fired = []
            for delay, name in events:
                s.schedule(delay, lambda n=name: fired.append((s.clock.now(), n)))
            if split is not None:
                s.run_until(1000.0 + split)
            s.run_until(1030.0)
            return fired

        assert trace(None) == trace(9.0) == trace(10.0)

    def test_advance_runs_relative_window(self):
        s = make()
        fired = []
        s.schedule(5.0, fired.append, 1)
        assert s.advance(5.0) == 1
        assert s.clock.now() == 1005.0
        with pytest.raises(ValueError):
            s.advance(-1.0)

    def test_fired_counter_accumulates(self):
        s = make()
        for _ in range(4):
            s.schedule(1.0, lambda: None)
        s.run_until(1001.0)
        s.run()
        assert s.fired == 4


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        s = make()
        fired = []
        handle = s.schedule(5.0, fired.append, "dead")
        s.schedule(6.0, fired.append, "live")
        handle.cancel()
        s.run()
        assert fired == ["live"]

    def test_cancel_is_idempotent(self):
        s = make()
        handle = s.schedule(5.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert s.run() == 0

    def test_cancel_from_earlier_event(self):
        s = make()
        fired = []
        victim = s.schedule(10.0, fired.append, "victim")
        s.schedule(5.0, victim.cancel)
        s.run()
        assert fired == []

    def test_peek_skips_cancelled(self):
        s = make()
        first = s.schedule(1.0, lambda: None)
        s.schedule(2.0, lambda: None)
        first.cancel()
        assert s.peek() == 1002.0


class TestRepeating:
    def test_fires_every_interval(self):
        s = make()
        ticks = []
        s.schedule_repeating(10.0, lambda: ticks.append(s.clock.now()))
        s.run_until(1035.0)
        assert ticks == [1010.0, 1020.0, 1030.0]

    def test_first_delay_override(self):
        s = make()
        ticks = []
        s.schedule_repeating(10.0, lambda: ticks.append(s.clock.now()), first_delay=0.0)
        s.run_until(1020.0)
        assert ticks == [1000.0, 1010.0, 1020.0]

    def test_cancel_stops_the_series(self):
        s = make()
        ticks = []
        handle = s.schedule_repeating(10.0, lambda: ticks.append(s.clock.now()))
        s.run_until(1025.0)
        handle.cancel()
        s.run_until(1100.0)
        assert ticks == [1010.0, 1020.0]

    def test_self_cancel_from_callback(self):
        s = make()
        ticks = []

        def tick():
            ticks.append(s.clock.now())
            if len(ticks) == 2:
                handle.cancel()

        handle = s.schedule_repeating(5.0, tick)
        s.run_until(1100.0)
        assert ticks == [1005.0, 1010.0]

    def test_rejects_bad_intervals(self):
        s = make()
        with pytest.raises(ValueError):
            s.schedule_repeating(0.0, lambda: None)
        with pytest.raises(ValueError):
            s.schedule_repeating(5.0, lambda: None, first_delay=-1.0)


class TestRunCap:
    def test_max_events_caps_precisely(self):
        s = make()
        fired = []
        for i in range(5):
            s.schedule(1.0, fired.append, i)  # all at the same instant
        assert s.run(max_events=3) == 3
        assert fired == [0, 1, 2]
        assert len(s) == 2

    def test_uncapped_run_drains(self):
        s = make()
        for i in range(5):
            s.schedule(float(i), lambda: None)
        assert s.run() == 5
        assert len(s) == 0


class TestRngStreams:
    def test_per_actor_streams_are_stable(self):
        a = make().rng("alice")
        b = make().rng("alice")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_actors_do_not_perturb_each_other(self):
        s1 = make()
        lone = [s1.rng("alice").random() for _ in range(5)]
        s2 = make()
        s2.rng("mallory").random()  # interleaved foreign draws
        shared = []
        for _ in range(5):
            shared.append(s2.rng("alice").random())
            s2.rng("mallory").random()
        assert lone == shared


# -- heap tie-break ordering properties --------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32),
        min_size=1,
        max_size=40,
    )
)
def test_property_fires_sorted_by_time_then_schedule_order(delays):
    s = EventScheduler(clock=VirtualClock(0.0))
    fired = []
    for index, delay in enumerate(delays):
        s.schedule(delay, fired.append, (float(delay), index))
    s.run()
    assert fired == sorted(fired)  # (time, seq) is the exact firing key
    assert len(fired) == len(delays)


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False, width=32),
        min_size=2,
        max_size=30,
    ),
    data=st.data(),
)
def test_property_cancellation_removes_exactly_the_cancelled(delays, data):
    s = EventScheduler(clock=VirtualClock(0.0))
    fired = []
    handles = [
        s.schedule(delay, fired.append, index)
        for index, delay in enumerate(delays)
    ]
    doomed = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
    )
    for index in doomed:
        handles[index].cancel()
    s.run()
    assert set(fired) == set(range(len(delays))) - doomed


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32),
        min_size=1,
        max_size=30,
    ),
    split=st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32),
)
def test_property_split_runs_replay_identically(delays, split):
    def trace(stops):
        s = EventScheduler(clock=VirtualClock(0.0))
        fired = []
        for index, delay in enumerate(delays):
            s.schedule(
                delay, lambda i=index: fired.append((s.clock.now(), i))
            )
        for stop in stops:
            s.run_until(stop)
        return fired

    assert trace([100.0]) == trace([float(split), 100.0])

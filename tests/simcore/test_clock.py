"""The redesigned time seam: Clock protocol, Deadline handles, sleep."""

import math
import time

import pytest

from repro.common.clock import (
    Clock,
    SimulatedClock,
    SystemClock,
    VirtualClock,
    WallClock,
)


class TestAliases:
    def test_pre_redesign_names_still_resolve(self):
        assert SystemClock is WallClock
        assert SimulatedClock is VirtualClock

    def test_both_implement_the_protocol(self):
        assert isinstance(WallClock(), Clock)
        assert isinstance(VirtualClock(), Clock)


class TestVirtualSleep:
    def test_sleep_advances_instantly(self):
        clock = VirtualClock(100.0)
        began = time.time()
        clock.sleep(3600.0)
        assert clock.now() == 3700.0
        assert time.time() - began < 1.0  # a virtual hour costs no wall time

    def test_sleep_zero_and_negative_are_noops(self):
        clock = VirtualClock(100.0)
        clock.sleep(0.0)
        clock.sleep(-5.0)
        assert clock.now() == 100.0


class TestWallClock:
    def test_now_tracks_time(self):
        assert abs(WallClock().now() - time.time()) < 1.0

    def test_sleep_negative_is_noop(self):
        WallClock().sleep(-1.0)  # must not raise (time.sleep would)


class TestDeadline:
    def test_bounded_deadline_expires_when_reached(self):
        clock = VirtualClock(100.0)
        deadline = clock.deadline(5.0)
        assert deadline.bounded
        assert not deadline.expired()
        assert deadline.remaining() == 5.0
        clock.advance(5.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_remaining_never_negative(self):
        clock = VirtualClock(100.0)
        deadline = clock.deadline(1.0)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0

    def test_none_budget_never_expires(self):
        clock = VirtualClock(100.0)
        deadline = clock.deadline(None)
        clock.advance(10.0**9)
        assert not deadline.bounded
        assert not deadline.expired()
        assert deadline.remaining() == math.inf

    def test_nonpositive_budget_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.deadline(0.0)
        with pytest.raises(ValueError):
            clock.deadline(-1.0)

    def test_deadline_reads_live_clock(self):
        # The handle shares the clock, not a snapshot of it.
        clock = VirtualClock(0.0)
        deadline = clock.deadline(10.0)
        clock.sleep(4.0)
        assert deadline.remaining() == 6.0

"""RADIUS accounting (RFC 2866): authenticators, sessions, duplicates."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ProtocolError
from repro.radius.accounting import (
    AccountingClient,
    AccountingServer,
    encode_accounting_request,
    verify_accounting_request,
)
from repro.radius.dictionary import AcctStatusType, Attr, PacketCode
from repro.radius.packet import RADIUSPacket
from repro.radius.transport import UDPFabric

SECRET = b"acct-secret"


@pytest.fixture
def clock():
    return SimulatedClock(1_000_000.0)


@pytest.fixture
def rig(clock):
    fabric = UDPFabric(rng=random.Random(1))
    server = AccountingServer("10.0.0.99:1813", fabric, SECRET, clock=clock)
    client = AccountingClient(fabric, server.address, SECRET, "login1.stampede")

    class Rig:
        pass

    r = Rig()
    r.fabric, r.server, r.client, r.clock = fabric, server, client, clock
    return r


class TestWireFormat:
    def make_request(self):
        packet = RADIUSPacket(PacketCode.ACCOUNTING_REQUEST, 7)
        packet.add(Attr.USER_NAME, "alice")
        packet.add(Attr.ACCT_SESSION_ID, "sess-1")
        packet.add(Attr.ACCT_STATUS_TYPE, int(AcctStatusType.START).to_bytes(4, "big"))
        return packet

    def test_round_trip(self):
        wire = encode_accounting_request(self.make_request(), SECRET)
        verified = verify_accounting_request(wire, SECRET)
        assert verified.get_str(Attr.USER_NAME) == "alice"

    def test_wrong_secret_rejected(self):
        wire = encode_accounting_request(self.make_request(), SECRET)
        with pytest.raises(ProtocolError, match="authenticator"):
            verify_accounting_request(wire, b"wrong")

    def test_tampered_rejected(self):
        wire = bytearray(encode_accounting_request(self.make_request(), SECRET))
        wire[-1] ^= 0x01
        with pytest.raises(ProtocolError):
            verify_accounting_request(bytes(wire), SECRET)

    def test_access_request_rejected(self):
        packet = RADIUSPacket(PacketCode.ACCESS_REQUEST, 1)
        with pytest.raises(ProtocolError):
            encode_accounting_request(packet, SECRET)


class TestSessions:
    def test_start_stop_lifecycle(self, rig):
        assert rig.client.start("alice", "sess-1")
        assert len(rig.server.open_sessions()) == 1
        rig.clock.advance(3600)
        assert rig.client.stop("alice", "sess-1", session_time=3600)
        record = rig.server.sessions["sess-1"]
        assert not record.open
        assert record.session_time == 3600

    def test_session_time_derived_when_missing(self, rig):
        rig.client.start("alice", "sess-2")
        rig.clock.advance(120)
        packet = RADIUSPacket(PacketCode.ACCOUNTING_REQUEST, 99)
        packet.add(Attr.USER_NAME, "alice")
        packet.add(Attr.ACCT_SESSION_ID, "sess-2")
        packet.add(Attr.ACCT_STATUS_TYPE, int(AcctStatusType.STOP).to_bytes(4, "big"))
        rig.fabric.send_request(
            rig.server.address, encode_accounting_request(packet, SECRET)
        )
        assert rig.server.sessions["sess-2"].session_time == 120

    def test_per_user_query(self, rig):
        rig.client.start("alice", "s1")
        rig.client.start("bob", "s2")
        rig.client.start("alice", "s3")
        assert len(rig.server.sessions_for("alice")) == 2
        assert rig.server.total_sessions() == 3

    def test_retransmit_deduplicated(self, rig):
        packet = RADIUSPacket(PacketCode.ACCOUNTING_REQUEST, 5)
        packet.add(Attr.USER_NAME, "alice")
        packet.add(Attr.ACCT_SESSION_ID, "dup-1")
        packet.add(Attr.ACCT_STATUS_TYPE, int(AcctStatusType.START).to_bytes(4, "big"))
        wire = encode_accounting_request(packet, SECRET)
        assert rig.fabric.send_request(rig.server.address, wire, "nas") is not None
        assert rig.fabric.send_request(rig.server.address, wire, "nas") is not None
        assert rig.server.duplicates == 1
        assert rig.server.total_sessions() == 1

    def test_lossy_fabric_retries(self, clock):
        fabric = UDPFabric(loss_rate=0.4, rng=random.Random(3))
        server = AccountingServer("10.0.0.98:1813", fabric, SECRET, clock=clock)
        client = AccountingClient(fabric, server.address, SECRET, "login1")
        acked = sum(1 for i in range(50) if client.start("alice", f"s{i}"))
        assert acked >= 40

    def test_wrong_secret_silently_dropped(self, rig):
        liar = AccountingClient(rig.fabric, rig.server.address, b"wrong", "nas")
        assert not liar.start("alice", "evil-1")
        assert rig.server.total_sessions() == 0

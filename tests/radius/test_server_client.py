"""RADIUS server + client: verdicts, challenges, load balancing, failover."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigurationError
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.server import OTPServer
from repro.radius.client import AuthStatus, RADIUSClient
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric

SECRET = b"radius-shared-secret"
NAS = "129.114.0.10"


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def otp(clock):
    return OTPServer(clock=clock, rng=random.Random(1))


@pytest.fixture
def fabric():
    return UDPFabric(rng=random.Random(2))


@pytest.fixture
def farm(fabric, otp):
    servers = []
    for i in range(3):
        server = RADIUSServer(f"10.0.1.{i}:1812", fabric, otp, name=f"rad{i}")
        server.add_client("129.114.", SECRET)
        servers.append(server)
    return servers


@pytest.fixture
def client(fabric, farm):
    return RADIUSClient(
        fabric, [s.address for s in farm], SECRET, NAS, rng=random.Random(3)
    )


def soft_device(otp, clock, user="alice"):
    _, secret = otp.enroll_soft(user)
    return TOTPGenerator(secret=secret, clock=clock)


class TestVerdicts:
    def test_accept(self, client, otp, clock):
        device = soft_device(otp, clock)
        response = client.authenticate("alice", device.current_code())
        assert response.ok and response.status is AuthStatus.ACCEPT

    def test_reject_wrong_code(self, client, otp, clock):
        soft_device(otp, clock)
        response = client.authenticate("alice", "000000")
        assert response.status is AuthStatus.REJECT
        assert "invalid" in response.message

    def test_reject_no_pairing(self, client):
        response = client.authenticate("nobody", "123456")
        assert response.status is AuthStatus.REJECT
        assert "no MFA device pairing" in response.message

    def test_locked_message(self, client, otp, clock):
        soft_device(otp, clock)
        for _ in range(20):
            client.authenticate("alice", "000000")
        response = client.authenticate("alice", "111111")
        assert response.status is AuthStatus.REJECT
        assert "deactivated" in response.message


class TestSMSChallenge:
    def test_null_request_challenges(self, client, otp, clock):
        otp.enroll_sms("carol", "5125551234")
        response = client.authenticate("carol", "")
        assert response.status is AuthStatus.CHALLENGE
        assert response.state is not None
        assert "sent" in response.message

    def test_already_sent_message(self, client, otp):
        otp.enroll_sms("carol", "5125551234")
        client.authenticate("carol", "")
        response = client.authenticate("carol", "")
        assert response.status is AuthStatus.CHALLENGE
        assert "already been sent" in response.message

    def test_challenge_completion(self, client, otp, clock):
        otp.enroll_sms("carol", "5125551234")
        challenge = client.authenticate("carol", "")
        clock.advance(10)
        code = otp.sms.latest("5125551234").body.split()[-1]
        response = client.authenticate("carol", code, state=challenge.state)
        assert response.ok


class TestClientSecurity:
    def test_unknown_nas_ignored(self, fabric, farm, otp, clock):
        device = soft_device(otp, clock)
        stranger = RADIUSClient(
            fabric, [farm[0].address], SECRET, "203.0.113.9", rng=random.Random(4)
        )
        response = stranger.authenticate("alice", device.current_code())
        assert response.status is AuthStatus.TIMEOUT
        assert farm[0].rejected_clients > 0

    def test_wrong_shared_secret_fails(self, fabric, farm, otp, clock):
        device = soft_device(otp, clock)
        liar = RADIUSClient(
            fabric, [farm[0].address], b"wrong", NAS, rng=random.Random(5)
        )
        response = liar.authenticate("alice", device.current_code())
        assert response.status in (AuthStatus.TIMEOUT, AuthStatus.REJECT)
        assert not response.ok

    def test_prefix_client_match(self, fabric, farm, otp, clock):
        device = soft_device(otp, clock)
        other_node = RADIUSClient(
            fabric, [farm[0].address], SECRET, "129.114.77.5", rng=random.Random(6)
        )
        assert other_node.authenticate("alice", device.current_code()).ok


class TestLoadBalancingAndFailover:
    def test_round_robin_spreads_load(self, client, farm, otp, clock):
        device = soft_device(otp, clock)
        for _ in range(30):
            clock.advance(31)
            client.authenticate("alice", device.current_code())
        handled = [s.handled for s in farm]
        assert all(h >= 5 for h in handled), handled

    def test_failover_on_outage(self, client, fabric, farm, otp, clock):
        device = soft_device(otp, clock)
        fabric.set_down(farm[0].address)
        fabric.set_down(farm[1].address)
        response = client.authenticate("alice", device.current_code())
        assert response.ok
        assert response.server == farm[2].address

    def test_all_down_times_out(self, client, fabric, farm, otp, clock):
        device = soft_device(otp, clock)
        for server in farm:
            fabric.set_down(server.address)
        response = client.authenticate("alice", device.current_code())
        assert response.status is AuthStatus.TIMEOUT

    def test_recovery_after_outage(self, client, fabric, farm, otp, clock):
        device = soft_device(otp, clock)
        for server in farm:
            fabric.set_down(server.address)
        client.authenticate("alice", device.current_code())
        for server in farm:
            fabric.set_down(server.address, False)
        clock.advance(31)
        assert client.authenticate("alice", device.current_code()).ok

    def test_empty_server_list_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            RADIUSClient(fabric, [], SECRET, NAS)

    def test_invalid_retries_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            RADIUSClient(fabric, ["a"], SECRET, NAS, retries=0)


class TestDuplicateDetection:
    def test_lost_response_replayed_from_cache(self, clock, otp):
        """RFC 5080: a retransmit must not re-consume the one-time code."""

        class FlakyFabric(UDPFabric):
            """Drops the first response, delivers the retransmit's."""

            def __init__(self):
                super().__init__(rng=random.Random(7))
                self.drop_next_response = True

            def send_request(self, address, datagram, source=""):
                response = super().send_request(address, datagram, source)
                if response is not None and self.drop_next_response:
                    self.drop_next_response = False
                    return None
                return response

        fabric = FlakyFabric()
        server = RADIUSServer("10.0.1.9:1812", fabric, otp)
        server.add_client("129.114.", SECRET)
        client = RADIUSClient(
            fabric, [server.address], SECRET, NAS, retries=3, rng=random.Random(8)
        )
        device = soft_device(otp, clock)
        response = client.authenticate("alice", device.current_code())
        assert response.ok
        assert server.duplicates_replayed == 1

    def test_lossy_fabric_high_success(self, clock, otp):
        fabric = UDPFabric(loss_rate=0.3, rng=random.Random(9))
        servers = []
        for i in range(2):
            s = RADIUSServer(f"10.0.2.{i}:1812", fabric, otp)
            s.add_client("129.114.", SECRET)
            servers.append(s)
        client = RADIUSClient(
            fabric, [s.address for s in servers], SECRET, NAS,
            retries=4, rng=random.Random(10),
        )
        device = soft_device(otp, clock, "bob")
        successes = 0
        for _ in range(40):
            clock.advance(31)
            if client.authenticate("bob", device.current_code()).ok:
                successes += 1
        assert successes >= 36


class TestResponseIdentifierCheck:
    def test_mismatched_identifier_treated_as_timeout(self, clock, otp):
        """A response whose identifier doesn't match the request is not
        accepted even with a valid authenticator for those bytes."""
        from repro.radius.packet import (
            RADIUSPacket, decode_packet, encode_packet,
        )
        from repro.radius.dictionary import PacketCode

        fabric = UDPFabric(rng=random.Random(30))

        def confused_server(datagram, source):
            request = decode_packet(datagram)
            response = RADIUSPacket(
                PacketCode.ACCESS_ACCEPT, (request.identifier + 1) % 256
            )
            return encode_packet(response, SECRET, request.authenticator)

        fabric.register("10.0.5.1:1812", confused_server)
        client = RADIUSClient(
            fabric, ["10.0.5.1:1812"], SECRET, NAS, retries=2,
            rng=random.Random(31),
        )
        response = client.authenticate("alice", "123456")
        assert response.status is AuthStatus.TIMEOUT

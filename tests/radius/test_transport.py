"""In-process datagram fabric: delivery, loss, outages."""

import random

import pytest

from repro.radius.transport import UDPFabric


class TestRegistration:
    def test_request_response(self):
        fabric = UDPFabric()
        fabric.register("10.0.0.1:1812", lambda data, src: data[::-1])
        assert fabric.send_request("10.0.0.1:1812", b"abc") == b"cba"

    def test_duplicate_bind_rejected(self):
        fabric = UDPFabric()
        fabric.register("a", lambda d, s: d)
        with pytest.raises(ValueError):
            fabric.register("a", lambda d, s: d)

    def test_no_listener_times_out(self):
        fabric = UDPFabric()
        assert fabric.send_request("nowhere", b"x") is None
        assert fabric.stats.no_listener == 1

    def test_unregister(self):
        fabric = UDPFabric()
        fabric.register("a", lambda d, s: d)
        assert fabric.is_registered("a")
        fabric.unregister("a")
        assert not fabric.is_registered("a")
        assert fabric.send_request("a", b"x") is None

    def test_unregister_unknown_raises(self):
        # Symmetric with register's duplicate-bind error: releasing an
        # address that was never bound is the same class of mistake.
        fabric = UDPFabric()
        with pytest.raises(ValueError):
            fabric.unregister("never-bound")
        fabric.register("a", lambda d, s: d)
        fabric.unregister("a")
        with pytest.raises(ValueError):
            fabric.unregister("a")  # double release

    def test_binding_telemetry(self):
        from repro.telemetry import Registry

        telemetry = Registry()
        fabric = UDPFabric(telemetry=telemetry)
        fabric.register("a", lambda d, s: d)
        with pytest.raises(ValueError):
            fabric.register("a", lambda d, s: d)
        fabric.unregister("a")
        with pytest.raises(ValueError):
            fabric.unregister("a")
        bindings = telemetry.counter("udp_fabric_bindings_total")
        assert bindings.value(op="bind", outcome="ok") == 1
        assert bindings.value(op="bind", outcome="duplicate") == 1
        assert bindings.value(op="unbind", outcome="ok") == 1
        assert bindings.value(op="unbind", outcome="unknown") == 1

    def test_source_passed_to_handler(self):
        fabric = UDPFabric()
        seen = []
        fabric.register("a", lambda d, s: seen.append(s) or b"ok")
        fabric.send_request("a", b"x", source="10.9.8.7")
        assert seen == ["10.9.8.7"]

    def test_handler_returning_none_is_timeout(self):
        fabric = UDPFabric()
        fabric.register("a", lambda d, s: None)
        assert fabric.send_request("a", b"x") is None


class TestOutages:
    def test_down_server_drops(self):
        fabric = UDPFabric()
        fabric.register("a", lambda d, s: b"ok")
        fabric.set_down("a")
        assert fabric.is_down("a")
        assert fabric.send_request("a", b"x") is None
        fabric.set_down("a", False)
        assert fabric.send_request("a", b"x") == b"ok"


class TestLoss:
    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            UDPFabric(loss_rate=1.0)
        with pytest.raises(ValueError):
            UDPFabric(loss_rate=-0.1)

    def test_loss_rate_statistics(self):
        fabric = UDPFabric(loss_rate=0.5, rng=random.Random(1))
        fabric.register("a", lambda d, s: b"ok")
        delivered = sum(
            1 for _ in range(1000) if fabric.send_request("a", b"x") is not None
        )
        # P(round trip) = 0.25; expect ~250.
        assert 180 <= delivered <= 320

    def test_stats_accounting(self):
        fabric = UDPFabric(loss_rate=0.3, rng=random.Random(2))
        fabric.register("a", lambda d, s: b"ok")
        for _ in range(100):
            fabric.send_request("a", b"x")
        assert fabric.stats.sent == 100
        assert fabric.stats.delivered + fabric.stats.dropped == 100

"""Wait-clock injection: how RADIUS waits are charged to simulated time.

The legacy knob (``FailoverPolicy.simulate_waits``) is folded into clock
injection: pass ``wait_clock=`` to charge timeout/backoff waits to a
clock, omit it for free waits.  The old knob keeps working behind a
DeprecationWarning.
"""

import random
import warnings

import pytest

from repro.common.clock import VirtualClock, WallClock
from repro.radius.client import RADIUSClient
from repro.radius.health import FailoverPolicy
from repro.radius.transport import UDPFabric


def make_client(**kwargs) -> RADIUSClient:
    fabric = UDPFabric()
    servers = ["10.0.0.10:1812"]
    fabric.set_down(servers[0])  # every attempt times out
    kwargs.setdefault("rng", random.Random(5))
    return RADIUSClient(fabric, servers, b"secret", source="10.1.1.5", **kwargs)


class TestWaitClockInjection:
    def test_injected_wait_clock_charges_waits(self):
        clock = VirtualClock(1000.0)
        client = make_client(clock=clock, wait_clock=clock)
        client.authenticate("user", "123456")
        # Three timeouts plus two backoff waits all landed on the clock.
        assert clock.now() > 1000.0

    def test_no_wait_clock_means_free_waits(self):
        clock = VirtualClock(1000.0)
        client = make_client(clock=clock)
        client.authenticate("user", "123456")
        assert clock.now() == 1000.0

    def test_without_any_clock_private_virtual_time_still_moves(self):
        client = make_client()
        before = client._now()
        client.authenticate("user", "123456")
        assert client._now() > before

    def test_deadline_budget_binds_under_wait_clock(self):
        clock = VirtualClock(0.0)
        client = make_client(
            clock=clock,
            wait_clock=clock,
            policy=FailoverPolicy(deadline_budget=2.0),
        )
        response = client.authenticate("user", "123456")
        assert "deadline" in response.message
        # The budget bounds simulated spend to roughly the budget plus the
        # last wait that straddled it.
        assert clock.now() < 10.0


class TestSimulateWaitsShim:
    def test_legacy_knob_warns_and_charges_the_clock(self):
        clock = VirtualClock(1000.0)
        with pytest.warns(DeprecationWarning, match="simulate_waits"):
            client = make_client(
                clock=clock, policy=FailoverPolicy(simulate_waits=True)
            )
        client.authenticate("user", "123456")
        assert clock.now() > 1000.0

    def test_legacy_knob_never_real_sleeps_on_wall_clock(self):
        # Historical behaviour: simulate_waits over a wall clock was a
        # no-op (waits free), never a real sleep.
        with pytest.warns(DeprecationWarning):
            client = make_client(
                clock=WallClock(), policy=FailoverPolicy(simulate_waits=True)
            )
        assert client._wait_clock is None

    def test_explicit_wait_clock_wins_over_legacy_knob(self):
        clock = VirtualClock(0.0)
        waits = VirtualClock(0.0)
        with pytest.warns(DeprecationWarning):
            client = make_client(
                clock=clock,
                wait_clock=waits,
                policy=FailoverPolicy(simulate_waits=True),
            )
        client.authenticate("user", "123456")
        assert clock.now() == 0.0  # shared time untouched
        assert waits.now() > 0.0  # waits charged to the dedicated clock

    def test_modern_path_emits_no_warning(self):
        clock = VirtualClock(0.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_client(clock=clock, wait_clock=clock)

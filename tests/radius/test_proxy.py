"""RADIUS proxy chaining: secret translation, Proxy-State, failover."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.server import OTPServer
from repro.radius.client import AuthStatus, RADIUSClient
from repro.radius.proxy import RADIUSProxy
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric

HOME_SECRET = b"home-realm-secret"
EDGE_SECRET = b"edge-realm-secret"


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def setup(clock):
    otp = OTPServer(clock=clock, rng=random.Random(1))
    fabric = UDPFabric(rng=random.Random(2))
    homes = []
    for i in range(2):
        server = RADIUSServer(f"10.0.9.{i}:1812", fabric, otp)
        server.add_client("10.0.8.", HOME_SECRET)
        homes.append(server)
    proxy = RADIUSProxy(
        "10.0.8.1:1812",
        fabric,
        [s.address for s in homes],
        client_secret=EDGE_SECRET,
        upstream_secret=HOME_SECRET,
        rng=random.Random(3),
    )
    client = RADIUSClient(
        fabric, [proxy.address], EDGE_SECRET, "129.114.0.10", rng=random.Random(4)
    )
    return otp, fabric, homes, proxy, client


class TestForwarding:
    def test_accept_through_proxy(self, setup, clock):
        otp, _, _, proxy, client = setup
        _, secret = otp.enroll_soft("alice")
        device = TOTPGenerator(secret=secret, clock=clock)
        response = client.authenticate("alice", device.current_code())
        assert response.ok
        assert proxy.forwarded == 1

    def test_reject_through_proxy(self, setup):
        otp, _, _, _, client = setup
        otp.enroll_soft("alice")
        assert client.authenticate("alice", "000000").status is AuthStatus.REJECT

    def test_password_retranslated_per_hop(self, setup, clock):
        """The proxy must re-hide the password under the upstream secret —
        the home server only knows the home realm's secret."""
        otp, _, homes, _, client = setup
        _, secret = otp.enroll_soft("bob")
        device = TOTPGenerator(secret=secret, clock=clock)
        assert client.authenticate("bob", device.current_code()).ok
        assert sum(s.handled for s in homes) == 1

    def test_proxy_state_stripped_from_reply(self, setup, clock):
        otp, _, _, _, client = setup
        _, secret = otp.enroll_soft("carol")
        device = TOTPGenerator(secret=secret, clock=clock)
        response = client.authenticate("carol", device.current_code())
        # The client-visible response carries no proxy internals.
        assert response.ok

    def test_upstream_failover(self, setup, clock):
        otp, fabric, homes, _, client = setup
        _, secret = otp.enroll_soft("dave")
        device = TOTPGenerator(secret=secret, clock=clock)
        fabric.set_down(homes[0].address)
        assert client.authenticate("dave", device.current_code()).ok

    def test_down_upstream_skipped_without_timeout(self, setup, clock):
        # The proxy consults the fabric's down-marks instead of burning a
        # timeout on a dead upstream every time round-robin lands on it.
        otp, fabric, homes, proxy, client = setup
        _, secret = otp.enroll_soft("frank")
        device = TOTPGenerator(secret=secret, clock=clock)
        fabric.set_down(homes[0].address)
        dropped_before = fabric.stats.dropped
        for _ in range(4):
            clock.advance(31)  # fresh TOTP step each login
            assert client.authenticate("frank", device.current_code()).ok
        assert proxy.skipped_down >= 2  # round-robin landed on the dead one
        # Skipping means no datagram was ever fired at the down upstream
        # (a send to a down address would count as a fabric drop).
        assert fabric.stats.dropped == dropped_before

    def test_all_upstreams_down(self, setup, clock):
        otp, fabric, homes, _, client = setup
        _, secret = otp.enroll_soft("eve")
        device = TOTPGenerator(secret=secret, clock=clock)
        for server in homes:
            fabric.set_down(server.address)
        response = client.authenticate("eve", device.current_code())
        assert response.status is AuthStatus.TIMEOUT

    def test_challenge_through_proxy(self, setup, clock):
        otp, _, _, _, client = setup
        otp.enroll_sms("fran", "5125551234")
        challenge = client.authenticate("fran", "")
        assert challenge.status is AuthStatus.CHALLENGE
        clock.advance(10)
        code = otp.sms.latest("5125551234").body.split()[-1]
        assert client.authenticate("fran", code, state=challenge.state).ok

    def test_requires_upstreams(self, setup):
        _, fabric, _, _, _ = setup
        with pytest.raises(ValueError):
            RADIUSProxy("x", fabric, [], EDGE_SECRET, HOME_SECRET)

    def test_wrong_client_secret_dropped(self, setup, clock):
        otp, fabric, _, proxy, _ = setup
        _, secret = otp.enroll_soft("gina")
        device = TOTPGenerator(secret=secret, clock=clock)
        liar = RADIUSClient(
            fabric, [proxy.address], b"not-the-edge-secret", "129.114.0.11",
            rng=random.Random(5),
        )
        response = liar.authenticate("gina", device.current_code())
        assert not response.ok

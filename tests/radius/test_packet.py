"""RADIUS wire format: header, attributes, authenticators, password hiding."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ProtocolError
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.packet import (
    RADIUSPacket,
    decode_packet,
    encode_packet,
    hide_password,
    new_request_authenticator,
    recover_password,
    response_authenticator,
    verify_response,
)

SECRET = b"shared-secret"


def make_request(rng_seed=1):
    auth = new_request_authenticator(random.Random(rng_seed))
    packet = RADIUSPacket(PacketCode.ACCESS_REQUEST, 42, auth)
    packet.add(Attr.USER_NAME, "alice")
    packet.add(Attr.USER_PASSWORD, hide_password("123456", SECRET, auth))
    return packet


class TestWireFormat:
    def test_round_trip(self):
        packet = make_request()
        decoded = decode_packet(encode_packet(packet, SECRET))
        assert decoded.code == PacketCode.ACCESS_REQUEST
        assert decoded.identifier == 42
        assert decoded.get_str(Attr.USER_NAME) == "alice"

    def test_header_length_field(self):
        wire = encode_packet(make_request(), SECRET)
        assert int.from_bytes(wire[2:4], "big") == len(wire)

    def test_truncated_packet_rejected(self):
        with pytest.raises(ProtocolError, match="shorter than the header"):
            decode_packet(b"\x01\x02\x03")

    def test_length_mismatch_rejected(self):
        wire = bytearray(encode_packet(make_request(), SECRET))
        wire[3] += 1  # lie about the length
        with pytest.raises(ProtocolError, match="length field"):
            decode_packet(bytes(wire))

    def test_unknown_code_rejected(self):
        wire = bytearray(encode_packet(make_request(), SECRET))
        wire[0] = 99
        with pytest.raises(ProtocolError, match="unknown packet code"):
            decode_packet(bytes(wire))

    def test_truncated_attribute_rejected(self):
        packet = RADIUSPacket(PacketCode.ACCESS_REQUEST, 1, b"\x00" * 16)
        wire = bytearray(encode_packet(packet, SECRET))
        wire.extend(b"\x01\x09ab")  # claims 9 bytes, provides 2
        wire[2:4] = len(wire).to_bytes(2, "big")
        with pytest.raises(ProtocolError, match="invalid attribute length"):
            decode_packet(bytes(wire))

    def test_repeated_attributes_preserved(self):
        packet = RADIUSPacket(PacketCode.ACCESS_ACCEPT, 7)
        packet.add(Attr.REPLY_MESSAGE, "one")
        packet.add(Attr.REPLY_MESSAGE, "two")
        wire = encode_packet(packet, SECRET, b"\x00" * 16)
        decoded = decode_packet(wire)
        assert [v.decode() for v in decoded.get_all(Attr.REPLY_MESSAGE)] == ["one", "two"]

    def test_attribute_too_long_rejected(self):
        packet = RADIUSPacket(PacketCode.ACCESS_REQUEST, 1)
        with pytest.raises(ProtocolError):
            packet.add(Attr.REPLY_MESSAGE, "x" * 254)

    @given(st.binary(min_size=20, max_size=200))
    def test_decoder_never_crashes(self, noise):
        try:
            decode_packet(noise)
        except ProtocolError:
            pass  # rejection is fine; crashing is not


class TestPasswordHiding:
    def test_round_trip(self):
        auth = new_request_authenticator(random.Random(2))
        hidden = hide_password("123456", SECRET, auth)
        assert recover_password(hidden, SECRET, auth) == "123456"

    def test_hidden_is_not_plaintext(self):
        auth = new_request_authenticator(random.Random(3))
        assert b"123456" not in hide_password("123456", SECRET, auth)

    def test_length_is_16_multiple(self):
        auth = new_request_authenticator(random.Random(4))
        for pw in ("x", "1234567890123456", "a" * 30):
            assert len(hide_password(pw, SECRET, auth)) % 16 == 0

    def test_long_password_multiblock(self):
        auth = new_request_authenticator(random.Random(5))
        pw = "p" * 40  # three blocks
        assert recover_password(hide_password(pw, SECRET, auth), SECRET, auth) == pw

    def test_empty_password(self):
        auth = new_request_authenticator(random.Random(6))
        hidden = hide_password("", SECRET, auth)
        assert recover_password(hidden, SECRET, auth) == ""

    def test_over_128_rejected(self):
        with pytest.raises(ProtocolError):
            hide_password("x" * 129, SECRET, b"\x00" * 16)

    def test_wrong_secret_fails(self):
        auth = new_request_authenticator(random.Random(7))
        hidden = hide_password("123456", SECRET, auth)
        with pytest.raises(ProtocolError):
            recover_password(hidden, b"other-secret", auth)
        # Occasionally the XOR garbage is valid UTF-8; ProtocolError or a
        # wrong password are both acceptable failure signals — but for this
        # seed it raises.

    def test_bad_block_size_rejected(self):
        with pytest.raises(ProtocolError, match="16-byte multiple"):
            recover_password(b"short", SECRET, b"\x00" * 16)

    @given(
        pw=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=0,
            max_size=32,
        ),
        seed=st.integers(0, 2**16),
    )
    def test_round_trip_any_password(self, pw, seed):
        auth = new_request_authenticator(random.Random(seed))
        assert recover_password(hide_password(pw, SECRET, auth), SECRET, auth) == pw


class TestResponseAuthenticator:
    def test_valid_response_verifies(self):
        request = make_request()
        response = RADIUSPacket(PacketCode.ACCESS_ACCEPT, request.identifier)
        response.add(Attr.REPLY_MESSAGE, "ok")
        wire = encode_packet(response, SECRET, request.authenticator)
        verified = verify_response(wire, request.authenticator, SECRET)
        assert verified.code == PacketCode.ACCESS_ACCEPT

    def test_wrong_secret_rejected(self):
        request = make_request()
        response = RADIUSPacket(PacketCode.ACCESS_ACCEPT, request.identifier)
        wire = encode_packet(response, b"wrong", request.authenticator)
        with pytest.raises(ProtocolError, match="authenticator"):
            verify_response(wire, request.authenticator, SECRET)

    def test_tampered_attribute_rejected(self):
        request = make_request()
        response = RADIUSPacket(PacketCode.ACCESS_REJECT, request.identifier)
        response.add(Attr.REPLY_MESSAGE, "denied")
        wire = bytearray(encode_packet(response, SECRET, request.authenticator))
        wire[-1] ^= 0xFF  # flip a byte of the reply message
        with pytest.raises(ProtocolError):
            verify_response(bytes(wire), request.authenticator, SECRET)

    def test_code_flip_rejected(self):
        # An attacker flipping Reject -> Accept must fail verification.
        request = make_request()
        response = RADIUSPacket(PacketCode.ACCESS_REJECT, request.identifier)
        wire = bytearray(encode_packet(response, SECRET, request.authenticator))
        wire[0] = PacketCode.ACCESS_ACCEPT
        with pytest.raises(ProtocolError):
            verify_response(bytes(wire), request.authenticator, SECRET)

    def test_responses_require_request_authenticator(self):
        response = RADIUSPacket(PacketCode.ACCESS_ACCEPT, 1)
        with pytest.raises(ProtocolError, match="request authenticator"):
            encode_packet(response, SECRET)

    def test_authenticator_depends_on_all_fields(self):
        base = response_authenticator(2, 1, [], b"\x00" * 16, SECRET)
        assert response_authenticator(3, 1, [], b"\x00" * 16, SECRET) != base
        assert response_authenticator(2, 2, [], b"\x00" * 16, SECRET) != base
        assert response_authenticator(2, 1, [(18, b"x")], b"\x00" * 16, SECRET) != base
        assert response_authenticator(2, 1, [], b"\x01" * 16, SECRET) != base

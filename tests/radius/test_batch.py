"""RADIUSServer.handle_batch: burst draining over the batched back end."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.otpserver.results import ValidateResult, ValidateStatus
from repro.otpserver.server import OTPServer
from repro.radius.dictionary import Attr, PacketCode
from repro.radius.packet import (
    RADIUSPacket,
    decode_packet,
    encode_packet,
    hide_password,
)
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric

SECRET = b"radius-shared-secret"
NAS = "129.114.0.10"


def make_request(identifier, username, code, secret=SECRET):
    authenticator = bytes([identifier]) * 16
    request = RADIUSPacket(PacketCode.ACCESS_REQUEST, identifier, authenticator)
    request.add(Attr.USER_NAME, username)
    if code is not None:
        request.add(Attr.USER_PASSWORD, hide_password(code, secret, authenticator))
    return encode_packet(request, secret)


def reply_code(wire, identifier):
    response = decode_packet(wire)
    assert response.identifier == identifier
    return response.code


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def otp(clock):
    server = OTPServer(clock=clock, rng=random.Random(1))
    for i in range(4):
        server.enroll_static(f"user{i}", "424242")
    return server


@pytest.fixture
def server(otp):
    fabric = UDPFabric(rng=random.Random(2))
    server = RADIUSServer("10.0.1.1:1812", fabric, otp, name="rad-batch")
    server.add_client("129.114.", SECRET)
    return server


class TestHandleBatch:
    def test_verdicts_are_positional(self, server):
        datagrams = [
            (make_request(1, "user0", "424242"), NAS),
            (make_request(2, "user1", "999999"), NAS),
            (make_request(3, "nobody", "424242"), NAS),
        ]
        responses = server.handle_batch(datagrams)
        assert reply_code(responses[0], 1) == PacketCode.ACCESS_ACCEPT
        assert reply_code(responses[1], 2) == PacketCode.ACCESS_REJECT
        assert reply_code(responses[2], 3) == PacketCode.ACCESS_REJECT
        assert server.handled == 3

    def test_batch_matches_sequential_verdicts(self, server, otp):
        batch = server.handle_batch(
            [(make_request(i + 1, f"user{i}", "424242"), NAS) for i in range(4)]
        )
        sequential = [
            server.handle_datagram(make_request(i + 10, f"user{i}", "424242"), NAS)
            for i in range(4)
        ]
        for i, (a, b) in enumerate(zip(batch, sequential)):
            assert reply_code(a, i + 1) == reply_code(b, i + 10)

    def test_unknown_client_dropped_in_place(self, server):
        responses = server.handle_batch(
            [
                (make_request(1, "user0", "424242"), "203.0.113.9"),
                (make_request(2, "user1", "424242"), NAS),
            ]
        )
        assert responses[0] is None
        assert reply_code(responses[1], 2) == PacketCode.ACCESS_ACCEPT
        assert server.rejected_clients == 1

    def test_undecodable_and_wrong_code_dropped(self, server):
        not_access = RADIUSPacket(PacketCode.ACCESS_ACCEPT, 7, bytes(16))
        responses = server.handle_batch(
            [
                (b"garbage", NAS),
                (encode_packet(not_access, SECRET, bytes(16)), NAS),
                (make_request(2, "user0", "424242"), NAS),
            ]
        )
        assert responses[0] is None and responses[1] is None
        assert reply_code(responses[2], 2) == PacketCode.ACCESS_ACCEPT

    def test_missing_username_rejected(self, server):
        authenticator = bytes([9]) * 16
        request = RADIUSPacket(PacketCode.ACCESS_REQUEST, 9, authenticator)
        request.add(Attr.USER_PASSWORD, hide_password("x", SECRET, authenticator))
        responses = server.handle_batch([(encode_packet(request, SECRET), NAS)])
        assert reply_code(responses[0], 9) == PacketCode.ACCESS_REJECT

    def test_duplicate_within_batch_replayed_not_revalidated(self, server, otp):
        wire = make_request(1, "user0", "424242")
        responses = server.handle_batch([(wire, NAS), (wire, NAS)])
        assert responses[0] == responses[1]
        assert server.duplicates_replayed == 1
        assert server.handled == 1

    def test_duplicate_of_earlier_datagram_served_from_cache(self, server):
        wire = make_request(1, "user0", "424242")
        first = server.handle_datagram(wire, NAS)
        responses = server.handle_batch([(wire, NAS)])
        assert responses[0] == first
        assert server.duplicates_replayed == 1

    def test_batch_responses_land_in_dup_cache(self, server):
        wire = make_request(1, "user0", "424242")
        (response,) = server.handle_batch([(wire, NAS)])
        assert server.handle_datagram(wire, NAS) == response
        assert server.duplicates_replayed == 1

    def test_uses_submit_api_when_offered(self, clock):
        from repro.otpserver.results import Ticket

        class BatchingBackend:
            def __init__(self):
                self.batch_calls = 0
                self.single_calls = 0

            def validate(self, user, code):
                self.single_calls += 1
                return ValidateResult(ValidateStatus.OK)

            def submit(self, request):
                self.single_calls += 1
                return Ticket.completed(ValidateResult(ValidateStatus.OK))

            def submit_many(self, requests):
                self.batch_calls += 1
                return [
                    Ticket.completed(ValidateResult(ValidateStatus.OK))
                    for _ in requests
                ]

        backend = BatchingBackend()
        fabric = UDPFabric(rng=random.Random(3))
        server = RADIUSServer("10.0.1.2:1812", fabric, backend, name="rad-b")
        server.add_client("129.114.", SECRET)
        server.handle_batch(
            [(make_request(i + 1, f"user{i}", "424242"), NAS) for i in range(3)]
        )
        assert backend.batch_calls == 1
        assert backend.single_calls == 0
        # A single surviving request skips the batch machinery.
        server.handle_batch([(make_request(9, "user9", "424242"), NAS)])
        assert backend.batch_calls == 1
        assert backend.single_calls == 1

    def test_legacy_validate_many_backend_falls_back_to_singles(self, clock):
        # Duck-typed validate_many discovery is gone: a backend that never
        # adopted SubmitAPI still works, one validate() per request.
        class LegacyBackend:
            def __init__(self):
                self.batch_calls = 0
                self.single_calls = 0

            def validate(self, user, code):
                self.single_calls += 1
                return ValidateResult(ValidateStatus.OK)

            def validate_many(self, requests):
                self.batch_calls += 1
                return [ValidateResult(ValidateStatus.OK) for _ in requests]

        backend = LegacyBackend()
        fabric = UDPFabric(rng=random.Random(4))
        server = RADIUSServer("10.0.1.3:1812", fabric, backend, name="rad-c")
        server.add_client("129.114.", SECRET)
        responses = server.handle_batch(
            [(make_request(i + 1, f"user{i}", "424242"), NAS) for i in range(3)]
        )
        assert len(responses) == 3
        assert backend.batch_calls == 0
        assert backend.single_calls == 3

    def test_empty_batch(self, server):
        assert server.handle_batch([]) == []

"""Unit tests for the metric primitives, registry and exporters."""

import json

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigurationError
from repro.telemetry import (
    NOOP_REGISTRY,
    OVERFLOW_KEY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    label_key,
    render_json,
    render_text,
    resolve_registry,
)


class TestLabelKey:
    def test_empty(self):
        assert label_key({}) == ()

    def test_order_independent(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})

    def test_values_stringified(self):
        assert label_key({"n": 3}) == (("n", "3"),)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc(server="a")
        c.inc(2.0, server="a")
        c.inc(server="b")
        assert c.value(server="a") == 3.0
        assert c.value(server="b") == 1.0
        assert c.value(server="missing") == 0.0
        assert c.total() == 4.0

    def test_unlabeled_series(self):
        c = Counter("n")
        c.inc()
        c.inc()
        assert c.value() == 2.0

    def test_negative_increment_rejected(self):
        c = Counter("n")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("")

    def test_reset(self):
        c = Counter("n")
        c.inc(x="1")
        c.reset()
        assert c.total() == 0.0
        assert c.series() == {}

    def test_cardinality_overflow(self):
        c = Counter("n", max_series=3)
        for i in range(5):
            c.inc(user=f"u{i}")
        # Three real series plus the collapsed overflow series.
        series = c.series()
        assert len(series) == 4
        assert series[OVERFLOW_KEY] == 2.0
        assert c.overflow_count == 2
        # An existing label set keeps landing on its own series.
        c.inc(user="u0")
        assert c.value(user="u0") == 2.0

    def test_snapshot_shape(self):
        c = Counter("n", help="things")
        c.inc(kind="a")
        snap = c.snapshot()
        assert snap["name"] == "n"
        assert snap["kind"] == "counter"
        assert snap["help"] == "things"
        assert snap["series"] == [{"labels": {"kind": "a"}, "value": 1.0}]


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5, queue="sms")
        g.inc(queue="sms")
        g.dec(2.0, queue="sms")
        assert g.value(queue="sms") == 4.0

    def test_can_go_negative(self):
        g = Gauge("depth")
        g.dec(3.0)
        assert g.value() == -3.0


class TestHistogram:
    def test_aggregates(self):
        h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        assert h.mean() == pytest.approx(55.55 / 4)
        # One observation per bucket, one in +Inf.
        assert h.bucket_counts() == [1, 1, 1, 1]

    def test_bounds_sorted_and_required(self):
        h = Histogram("h", buckets=(5.0, 1.0))
        assert h.buckets == (1.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_quantile_estimate(self):
        h = Histogram("h", buckets=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 3.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_labeled_series_independent(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5, op="a")
        h.observe(0.7, op="b")
        assert h.count(op="a") == 1
        assert h.count(op="b") == 1
        assert h.count() == 0

    def test_empty_series_zeroes(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.count() == 0
        assert h.sum() == 0.0
        assert h.mean() == 0.0
        assert h.quantile(0.5) == 0.0


class TestRegistry:
    def test_same_name_same_instrument(self):
        r = Registry(clock=SimulatedClock(0.0))
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_mismatch_raises(self):
        r = Registry(clock=SimulatedClock(0.0))
        r.counter("a")
        with pytest.raises(ConfigurationError):
            r.gauge("a")
        with pytest.raises(ConfigurationError):
            r.histogram("a")

    def test_snapshot_and_reset(self):
        clock = SimulatedClock(0.0)
        r = Registry(clock=clock)
        r.counter("c").inc(x="1")
        r.gauge("g").set(2.0)
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        with r.tracer().span("root"):
            clock.advance(1.0)
        snap = r.snapshot()
        assert snap["enabled"] is True
        assert [m["name"] for m in snap["counters"]] == ["c"]
        assert [m["name"] for m in snap["gauges"]] == ["g"]
        assert [m["name"] for m in snap["histograms"]] == ["h"]
        assert len(snap["traces"]) == 1
        assert "traces" not in r.snapshot(include_traces=False)
        r.reset()
        assert r.counter("c").total() == 0.0
        assert r.tracer().last_trace() is None
        # Instruments survive a reset; only their series are zeroed.
        assert "c" in r.instruments()

    def test_resolve_registry(self):
        assert resolve_registry(None) is NOOP_REGISTRY
        assert resolve_registry(False) is NOOP_REGISTRY
        clock = SimulatedClock(7.0)
        enabled = resolve_registry(True, clock=clock)
        assert enabled.enabled and enabled.clock is clock
        assert resolve_registry(enabled) is enabled


class TestNoopRegistry:
    def test_everything_is_free_and_silent(self):
        r = NOOP_REGISTRY
        assert r.enabled is False
        c = r.counter("anything")
        c.inc(label="x")
        assert c.value(label="x") == 0.0
        assert r.counter("a") is r.gauge("b") is r.histogram("c")
        r.histogram("h").observe(3.0)
        with r.tracer().span("s") as span:
            span.annotate("k", "v")
            span.set_status("error")
        assert r.tracer().last_trace() is None
        assert r.instruments() == {}
        snap = r.snapshot()
        assert snap["enabled"] is False and snap["traces"] == []


class TestExporters:
    def _registry(self):
        r = Registry(clock=SimulatedClock(0.0))
        r.counter("logins_total", "logins by result").inc(result="ok")
        r.counter("logins_total").inc(result="bad")
        r.histogram("lat", "latency", buckets=(1.0, 2.0)).observe(1.5)
        return r

    def test_text_format(self):
        text = render_text(self._registry().snapshot())
        assert "# HELP logins_total logins by result" in text
        assert "# TYPE logins_total counter" in text
        assert 'logins_total{result="ok"} 1' in text
        assert 'logins_total{result="bad"} 1' in text
        # Histogram buckets are cumulative, with the canonical suffixes.
        assert 'lat_bucket{le="1.0"} 0' in text
        assert 'lat_bucket{le="2.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text

    def test_text_disabled_marker(self):
        assert "telemetry disabled" in render_text(NOOP_REGISTRY.snapshot())

    def test_json_round_trip(self):
        snap = self._registry().snapshot()
        parsed = json.loads(render_json(snap))
        assert parsed["enabled"] is True
        assert parsed["counters"][0]["name"] == "logins_total"

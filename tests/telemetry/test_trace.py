"""Unit tests for the span/tracer layer."""

import pytest

from repro.common.clock import SimulatedClock
from repro.telemetry import NOOP_SPAN, NOOP_TRACER, Tracer


@pytest.fixture
def clock():
    return SimulatedClock(100.0)


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestNesting:
    def test_child_attaches_to_open_parent(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
        assert outer.children == [inner]
        assert inner.children == []
        assert outer.duration == pytest.approx(3.0)
        assert inner.duration == pytest.approx(2.0)

    def test_siblings(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        root = tracer.last_trace()
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.span_count() == 3

    def test_only_root_completion_retains_trace(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            # The child finished, but the trace is not retained yet.
            assert tracer.last_trace() is None
            assert tracer.current_span().name == "root"
        assert tracer.last_trace().name == "root"
        assert tracer.current_span() is None

    def test_find_and_walk(self, tracer):
        with tracer.span("root"):
            with tracer.span("pam"):
                with tracer.span("radius"):
                    pass
            with tracer.span("pam"):
                pass
        root = tracer.last_trace()
        assert root.find("radius").name == "radius"
        assert root.find("missing") is None
        assert len(root.find_all("pam")) == 2
        assert [s.name for s in root.walk()] == ["root", "pam", "radius", "pam"]


class TestAttributesAndStatus:
    def test_open_attributes_and_annotate(self, tracer):
        with tracer.span("s", user="alice") as span:
            span.annotate("result", "ok")
        assert span.attributes == {"user": "alice", "result": "ok"}

    def test_exception_marks_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        trace = tracer.last_trace()
        assert trace.status == "error"
        assert "RuntimeError" in trace.attributes["error"]

    def test_leaked_child_force_closed(self, tracer, clock):
        with tracer.span("root") as root:
            # A child opened without `with` and never closed by its creator.
            tracer.span("leaked")
            clock.advance(5.0)
        leaked = root.children[0]
        assert leaked.end == root.end
        assert leaked.status == "error"
        # The leak did not corrupt the stack: a new trace works normally.
        with tracer.span("next"):
            pass
        assert tracer.last_trace().name == "next"

    def test_to_dict_render(self, tracer, clock):
        with tracer.span("root", host="l1") as root:
            clock.advance(0.25)
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["duration"] == pytest.approx(0.25)
        assert d["attributes"] == {"host": "l1"}
        assert "root [0.250000s] host=l1" in root.render()


class TestRetention:
    def test_ring_buffer_cap(self, clock):
        tracer = Tracer(clock, max_traces=3)
        for i in range(5):
            with tracer.span(f"t{i}"):
                pass
        assert [t.name for t in tracer.traces] == ["t2", "t3", "t4"]
        assert tracer.spans_started == 5

    def test_take_traces_drains(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        taken = tracer.take_traces()
        assert [t.name for t in taken] == ["a", "b"]
        assert tracer.last_trace() is None

    def test_reset(self, tracer):
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.last_trace() is None
        assert tracer.spans_started == 0


class TestNoopTracer:
    def test_all_operations_free(self):
        with NOOP_TRACER.span("anything", user="x") as span:
            span.annotate("k", "v")
            span.set_status("error")
        assert span is NOOP_SPAN
        assert NOOP_SPAN.status == "ok"
        assert NOOP_TRACER.last_trace() is None
        assert NOOP_TRACER.current_span() is None
        assert NOOP_TRACER.take_traces() == []

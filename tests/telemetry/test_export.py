"""Exporters: exposition-format escaping and snapshot rendering."""

from repro.telemetry import Registry, render_text
from repro.telemetry.export import _escape_label_value


class TestLabelValueEscaping:
    def test_escape_rules(self):
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("line1\nline2") == "line1\\nline2"
        # Backslash escapes first, so an embedded \n sequence survives as-is.
        assert _escape_label_value("\\n") == "\\\\n"

    def test_rendered_counter_labels_are_escaped(self):
        registry = Registry()
        counter = registry.counter("evil_total", "labels from user input")
        counter.inc(reason='user "alice"\nsaid\\no')
        text = render_text(registry.snapshot(include_traces=False))
        line = next(
            ln for ln in text.splitlines() if ln.startswith("evil_total{")
        )
        assert line == 'evil_total{reason="user \\"alice\\"\\nsaid\\\\no"} 1'
        # The rendered output must stay one-line-per-sample.
        assert "\nsaid" not in text

    def test_histogram_labels_are_escaped(self):
        registry = Registry()
        histogram = registry.histogram("h_seconds", buckets=(1.0,))
        histogram.observe(0.5, path='a"b')
        text = render_text(registry.snapshot(include_traces=False))
        assert 'h_seconds_bucket{le="1.0",path="a\\"b"}' in text
        assert 'h_seconds_count{path="a\\"b"} 1' in text

    def test_clean_labels_unchanged(self):
        registry = Registry()
        registry.counter("ok_total").inc(status="ok")
        text = render_text(registry.snapshot(include_traces=False))
        assert 'ok_total{status="ok"} 1' in text

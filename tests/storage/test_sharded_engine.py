"""Sharded engine: placement, routed lookups, global constraints, atomicity."""

import threading

import pytest

from repro.common.errors import NotFoundError, ValidationError
from repro.storage import HashRing, InMemoryEngine, ShardedEngine, TableSchema
from repro.telemetry import Registry


def _schema():
    return TableSchema(
        columns=("serial", "user_id", "type", "failcount"),
        primary_key="serial",
        unique=("user_id",),
        indexed=("type",),
    )


@pytest.fixture
def engine():
    e = ShardedEngine(4)
    e.create_table("tokens", _schema())
    return e


def _fill(engine, n=40):
    for i in range(n):
        engine.insert(
            "tokens",
            {"serial": f"S{i}", "user_id": f"u{i}", "type": ("soft", "sms")[i % 2]},
        )


class TestHashRing:
    def test_deterministic_and_in_range(self):
        ring = HashRing(4)
        picks = [ring.shard_for(f"key{i}") for i in range(200)]
        assert picks == [ring.shard_for(f"key{i}") for i in range(200)]
        assert set(picks) <= {0, 1, 2, 3}

    def test_spreads_keys(self):
        ring = HashRing(4)
        counts = [0] * 4
        for i in range(2000):
            counts[ring.shard_for(f"tokens/S{i}")] += 1
        assert min(counts) > 200  # no dead shard, no 10x skew

    def test_consistency_on_growth(self):
        """Growing the ring moves only a minority of keys."""
        small, large = HashRing(4), HashRing(5)
        keys = [f"tokens/S{i}" for i in range(2000)]
        moved = sum(1 for k in keys if small.shard_for(k) != large.shard_for(k))
        assert moved < len(keys) * 0.5


class TestShardedCRUD:
    def test_rows_distributed_and_recombined(self, engine):
        _fill(engine)
        assert engine.row_count("tokens") == 40
        sizes = engine.shard_sizes("tokens")
        assert sum(sizes) == 40 and all(s > 0 for s in sizes)
        assert len(engine.select("tokens")) == 40

    def test_point_reads_route(self, engine):
        _fill(engine)
        assert engine.get("tokens", "S7")["user_id"] == "u7"
        assert engine.exists("tokens", "S7")
        assert not engine.exists("tokens", "S99")
        with pytest.raises(NotFoundError):
            engine.get("tokens", "S99")

    def test_indexed_select_hits_only_owning_shards(self, engine):
        _fill(engine)
        rows = engine.select("tokens", where={"user_id": "u3"})
        assert [r["serial"] for r in rows] == ["S3"]
        assert engine.select("tokens", where={"user_id": "nobody"}) == []
        assert engine.count("tokens", where={"type": "soft"}) == 20

    def test_get_by_unique_routes(self, engine):
        _fill(engine)
        assert engine.get_by_unique("tokens", "user_id", "u11")["serial"] == "S11"
        with pytest.raises(NotFoundError):
            engine.get_by_unique("tokens", "user_id", "ghost")
        with pytest.raises(ValidationError):
            engine.get_by_unique("tokens", "type", "soft")

    def test_unique_enforced_across_shards(self, engine):
        _fill(engine, 20)
        # Whatever shard S999 lands on, u5 already exists somewhere else.
        with pytest.raises(ValidationError, match="unique"):
            engine.insert("tokens", {"serial": "S999", "user_id": "u5"})
        with pytest.raises(ValidationError, match="unique"):
            engine.update("tokens", "S1", {"user_id": "u5"})

    def test_update_maintains_routing(self, engine):
        _fill(engine, 10)
        engine.update("tokens", "S2", {"type": "hard", "user_id": "relabeled"})
        assert engine.count("tokens", where={"type": "hard"}) == 1
        assert engine.get_by_unique("tokens", "user_id", "relabeled")["serial"] == "S2"
        with pytest.raises(NotFoundError):
            engine.get_by_unique("tokens", "user_id", "u2")
        # The freed unique slot is reusable on any shard.
        engine.insert("tokens", {"serial": "S100", "user_id": "u2"})

    def test_delete_maintains_routing(self, engine):
        _fill(engine, 10)
        engine.delete("tokens", "S4")
        assert engine.select("tokens", where={"user_id": "u4"}) == []
        engine.insert("tokens", {"serial": "S200", "user_id": "u4"})

    def test_shard_row_gauge(self):
        registry = Registry()
        engine = ShardedEngine(2, telemetry=registry)
        engine.create_table("tokens", _schema())
        _fill(engine, 12)
        gauge = registry.gauge("storage_shard_rows")
        total = sum(
            gauge.value(shard=str(i), table="tokens") for i in range(2)
        )
        assert total == 12


class TestShardedTransactions:
    def test_commit_spans_shards(self, engine):
        with engine.transaction():
            _fill(engine, 16)
        assert engine.row_count("tokens") == 16

    def test_abort_rolls_back_every_shard(self, engine):
        _fill(engine, 8)
        with pytest.raises(RuntimeError):
            with engine.transaction():
                for i in range(8):
                    engine.delete("tokens", f"S{i}")
                for i in range(20, 30):
                    engine.insert("tokens", {"serial": f"S{i}", "user_id": f"u{i}"})
                raise RuntimeError("boom")
        assert engine.row_count("tokens") == 8
        # Routing index rebuilt: lookups and counts still exact.
        assert engine.get_by_unique("tokens", "user_id", "u3")["serial"] == "S3"
        assert engine.count("tokens", where={"type": "soft"}) == 4
        assert engine.select("tokens", where={"user_id": "u25"}) == []

    def test_concurrent_unique_inserts_single_winner(self):
        engine = ShardedEngine(4)
        engine.create_table("tokens", _schema())
        errors = []
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            try:
                engine.insert("tokens", {"serial": f"S{i}", "user_id": "contested"})
            except ValidationError:
                errors.append(i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(errors) == 7  # exactly one claim won
        assert engine.count("tokens") == 1

    def test_threaded_disjoint_writes(self, engine):
        def worker(base):
            for i in range(25):
                serial = f"T{base}-{i}"
                engine.insert("tokens", {"serial": serial, "user_id": serial})
                engine.update("tokens", serial, {"failcount": i})

        threads = [threading.Thread(target=worker, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert engine.row_count("tokens") == 100
        assert engine.get("tokens", "T2-24")["failcount"] == 24


class TestConstruction:
    def test_engines_can_be_passed_explicitly(self):
        shards = [InMemoryEngine(), InMemoryEngine()]
        engine = ShardedEngine(shards)
        engine.create_table("t", TableSchema(("k",), "k"))
        engine.insert("t", {"k": 1})
        assert sum(s.row_count("t") for s in shards) == 1

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine([])

"""In-memory engine: CRUD, indices, and undo-log transaction semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import NotFoundError, ValidationError
from repro.storage import InMemoryEngine, TableSchema


@pytest.fixture
def engine():
    e = InMemoryEngine()
    e.create_table(
        "tokens",
        TableSchema(
            columns=("serial", "user_id", "type", "active"),
            primary_key="serial",
            unique=("user_id",),
            indexed=("type",),
        ),
    )
    return e


class TestCRUD:
    def test_insert_get_roundtrip(self, engine):
        engine.insert("tokens", {"serial": "S1", "user_id": "u1", "type": "soft"})
        assert engine.get("tokens", "S1")["user_id"] == "u1"
        assert engine.exists("tokens", "S1")
        assert engine.row_count("tokens") == 1

    def test_rows_are_copies(self, engine):
        engine.insert("tokens", {"serial": "S1", "active": True})
        row = engine.get("tokens", "S1")
        row["active"] = False
        assert engine.get("tokens", "S1")["active"] is True

    def test_missing_table(self, engine):
        with pytest.raises(NotFoundError):
            engine.get("nope", "S1")

    def test_duplicate_table(self, engine):
        with pytest.raises(ValidationError):
            engine.create_table("tokens", TableSchema(("x",), "x"))

    def test_delete_returns_row(self, engine):
        engine.insert("tokens", {"serial": "S1", "user_id": "u1"})
        assert engine.delete("tokens", "S1")["user_id"] == "u1"
        assert not engine.exists("tokens", "S1")

    def test_unique_lookup_and_violation(self, engine):
        engine.insert("tokens", {"serial": "S1", "user_id": "u1"})
        assert engine.get_by_unique("tokens", "user_id", "u1")["serial"] == "S1"
        with pytest.raises(ValidationError, match="unique"):
            engine.insert("tokens", {"serial": "S2", "user_id": "u1"})

    def test_indexed_count_is_exact(self, engine):
        for i, kind in enumerate(["soft", "soft", "sms"]):
            engine.insert("tokens", {"serial": f"S{i}", "user_id": f"u{i}", "type": kind})
        assert engine.count("tokens", where={"type": "soft"}) == 2
        assert engine.count("tokens", where={"type": "sms"}) == 1
        assert engine.count("tokens", where={"type": "hard"}) == 0
        assert engine.count("tokens", where={"serial": "S0"}) == 1
        assert engine.count("tokens", where={"user_id": "u1"}) == 1

    def test_select_by_primary_key_where(self, engine):
        engine.insert("tokens", {"serial": "S1", "type": "soft"})
        engine.insert("tokens", {"serial": "S2", "type": "soft"})
        assert len(engine.select("tokens", where={"serial": "S1"})) == 1


class TestUndoLogTransactions:
    def test_commit_keeps_writes(self, engine):
        with engine.transaction():
            engine.insert("tokens", {"serial": "S1"})
        assert engine.exists("tokens", "S1")

    def test_abort_undoes_insert_update_delete(self, engine):
        engine.insert("tokens", {"serial": "S0", "user_id": "u0", "type": "soft"})
        with pytest.raises(RuntimeError):
            with engine.transaction():
                engine.insert("tokens", {"serial": "S1", "user_id": "u1"})
                engine.update("tokens", "S0", {"type": "sms", "user_id": "u9"})
                engine.delete("tokens", "S0")
                raise RuntimeError("boom")
        assert not engine.exists("tokens", "S1")
        row = engine.get("tokens", "S0")
        assert row["type"] == "soft" and row["user_id"] == "u0"

    def test_abort_restores_unique_and_secondary_indices(self, engine):
        engine.insert("tokens", {"serial": "S0", "user_id": "u0", "type": "soft"})
        with pytest.raises(RuntimeError):
            with engine.transaction():
                engine.delete("tokens", "S0")
                engine.insert("tokens", {"serial": "S1", "user_id": "u0", "type": "sms"})
                raise RuntimeError("boom")
        # u0 must map back to S0, and the type index must be consistent.
        assert engine.get_by_unique("tokens", "user_id", "u0")["serial"] == "S0"
        assert engine.count("tokens", where={"type": "soft"}) == 1
        assert engine.count("tokens", where={"type": "sms"}) == 0
        with pytest.raises(ValidationError, match="unique"):
            engine.insert("tokens", {"serial": "S2", "user_id": "u0"})

    def test_nested_transactions_are_savepoints(self, engine):
        with engine.transaction():
            engine.insert("tokens", {"serial": "OUTER"})
            with pytest.raises(RuntimeError):
                with engine.transaction():
                    engine.insert("tokens", {"serial": "INNER"})
                    raise RuntimeError("inner boom")
            assert not engine.exists("tokens", "INNER")
            assert engine.exists("tokens", "OUTER")
        assert engine.exists("tokens", "OUTER")

    def test_outer_abort_rolls_back_committed_inner(self, engine):
        with pytest.raises(RuntimeError):
            with engine.transaction():
                with engine.transaction():
                    engine.insert("tokens", {"serial": "INNER"})
                raise RuntimeError("outer boom")
        assert not engine.exists("tokens", "INNER")

    def test_log_cleared_after_commit(self, engine):
        with engine.transaction():
            engine.insert("tokens", {"serial": "S1"})
        assert engine._log == []

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=25, unique=True))
    def test_abort_is_exact_inverse(self, keys):
        engine = InMemoryEngine()
        engine.create_table("t", TableSchema(("k", "v"), "k", indexed=("v",)))
        for k in keys[: len(keys) // 2 + 1]:
            engine.insert("t", {"k": k, "v": k % 3})
        before = sorted((r["k"], r["v"]) for r in engine.select("t"))
        with pytest.raises(RuntimeError):
            with engine.transaction():
                for k in keys:
                    if engine.exists("t", k):
                        engine.update("t", k, {"v": 99})
                        engine.delete("t", k)
                    else:
                        engine.insert("t", {"k": k, "v": k % 3})
                raise RuntimeError("boom")
        after = sorted((r["k"], r["v"]) for r in engine.select("t"))
        assert after == before
        # Secondary index agrees with a full scan for every bucket.
        for bucket in (0, 1, 2, 99):
            scan = [r for r in engine.select("t") if r["v"] == bucket]
            assert engine.count("t", where={"v": bucket}) == len(scan)


class TestLatency:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            InMemoryEngine(latency=-1.0)

    def test_latency_is_paid_per_op(self):
        engine = InMemoryEngine(latency=0.002)
        engine.create_table("t", TableSchema(("k",), "k"))
        import time

        start = time.perf_counter()
        for i in range(5):
            engine.insert("t", {"k": i})
        assert time.perf_counter() - start >= 0.01

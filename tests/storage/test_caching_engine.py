"""Read-through LRU cache and the instrumentation wrapper."""

import pytest

from repro.common.errors import NotFoundError
from repro.storage import (
    CachingEngine,
    InMemoryEngine,
    InstrumentedEngine,
    StorageConfig,
    TableSchema,
    build_engine,
)
from repro.telemetry import Registry


class CountingEngine(InMemoryEngine):
    """Counts reads that actually reach the backing engine."""

    def __init__(self):
        super().__init__()
        self.backend_reads = 0

    def get(self, table, pk):
        self.backend_reads += 1
        return super().get(table, pk)

    def get_by_unique(self, table, column, value):
        self.backend_reads += 1
        return super().get_by_unique(table, column, value)


def _rig(capacity=8, telemetry=None):
    inner = CountingEngine()
    cached = CachingEngine(inner, capacity=capacity, telemetry=telemetry)
    cached.create_table(
        "tokens",
        TableSchema(("serial", "user_id", "n"), "serial", unique=("user_id",)),
    )
    for i in range(4):
        cached.insert("tokens", {"serial": f"S{i}", "user_id": f"u{i}", "n": i})
    return inner, cached


class TestReadThrough:
    def test_second_get_is_a_hit(self):
        inner, cached = _rig()
        assert cached.get("tokens", "S1") == cached.get("tokens", "S1")
        assert inner.backend_reads == 1

    def test_unique_lookup_cached(self):
        inner, cached = _rig()
        cached.get_by_unique("tokens", "user_id", "u2")
        cached.get_by_unique("tokens", "user_id", "u2")
        assert inner.backend_reads == 1

    def test_cached_rows_are_copies(self):
        _, cached = _rig()
        row = cached.get("tokens", "S1")
        row["n"] = 999
        assert cached.get("tokens", "S1")["n"] == 1

    def test_misses_are_not_cached(self):
        inner, cached = _rig()
        for _ in range(2):
            with pytest.raises(NotFoundError):
                cached.get("tokens", "S99")
        assert inner.backend_reads == 2

    def test_lru_eviction(self):
        inner, cached = _rig(capacity=2)
        cached.get("tokens", "S0")
        cached.get("tokens", "S1")
        cached.get("tokens", "S2")  # evicts S0
        cached.get("tokens", "S0")
        assert inner.backend_reads == 4
        info = cached.cache_info()
        assert info["entries"] == 2
        assert info["capacity"] == 2
        assert info["hits"] == 0
        assert info["misses"] == 4
        assert info["hit_ratio"] == 0.0

    def test_hit_miss_counters(self):
        registry = Registry()
        _, cached = _rig(telemetry=registry)
        cached.get("tokens", "S1")
        cached.get("tokens", "S1")
        cached.get("tokens", "S1")
        assert registry.counter("storage_cache_misses_total").value(table="tokens") == 1
        assert registry.counter("storage_cache_hits_total").value(table="tokens") == 2


class TestVersioning:
    def test_bump_version_orphans_entries(self):
        inner, cached = _rig()
        cached.get("tokens", "S1")
        cached.get("tokens", "S1")
        assert inner.backend_reads == 1
        cached.bump_version()
        cached.get("tokens", "S1")  # old-version key is unreachable
        assert inner.backend_reads == 2

    def test_external_version_source_invalidates(self):
        inner, cached = _rig()
        policy_version = {"n": 0}
        cached.set_version_source(lambda: policy_version["n"])
        cached.get("tokens", "S1")
        cached.get("tokens", "S1")
        assert inner.backend_reads == 1
        policy_version["n"] += 1  # live policy reconfiguration
        cached.get("tokens", "S1")
        assert inner.backend_reads == 2

    def test_create_table_bumps_version(self):
        _, cached = _rig()
        before = cached.version()
        cached.create_table("extra", TableSchema(("id",), "id"))
        assert cached.version() > before

    def test_hit_ratio_reported(self):
        _, cached = _rig()
        cached.get("tokens", "S1")
        cached.get("tokens", "S1")
        cached.get("tokens", "S1")
        cached.get("tokens", "S2")
        info = cached.cache_info()
        assert info["hits"] == 2 and info["misses"] == 2
        assert info["hit_ratio"] == 0.5


class TestWriteInvalidation:
    def test_update_invalidates_pk_entry(self):
        inner, cached = _rig()
        cached.get("tokens", "S1")
        cached.update("tokens", "S1", {"n": 100})
        assert cached.get("tokens", "S1")["n"] == 100

    def test_update_invalidates_unique_entries(self):
        inner, cached = _rig()
        cached.get_by_unique("tokens", "user_id", "u1")
        cached.update("tokens", "S1", {"n": 100})
        assert cached.get_by_unique("tokens", "user_id", "u1")["n"] == 100

    def test_delete_invalidates(self):
        _, cached = _rig()
        cached.get("tokens", "S1")
        cached.delete("tokens", "S1")
        with pytest.raises(NotFoundError):
            cached.get("tokens", "S1")

    def test_aborted_transaction_clears_cache(self):
        _, cached = _rig()
        with pytest.raises(RuntimeError):
            with cached.transaction():
                cached.update("tokens", "S1", {"n": 100})
                cached.get("tokens", "S1")  # caches the uncommitted value
                raise RuntimeError("boom")
        assert cached.get("tokens", "S1")["n"] == 1  # rolled-back truth


class TestInstrumentedEngine:
    def test_op_series_recorded(self):
        registry = Registry()
        engine = InstrumentedEngine(InMemoryEngine(), telemetry=registry)
        engine.create_table("t", TableSchema(("k",), "k"))
        engine.insert("t", {"k": 1})
        engine.get("t", 1)
        engine.select("t")
        ops = registry.counter("storage_ops_total")
        assert ops.value(op="insert", table="t") == 1
        assert ops.value(op="get", table="t") == 1
        assert ops.value(op="select", table="t") == 1
        latency = registry.histogram("storage_op_seconds")
        assert latency.count(op="insert", table="t") == 1

    def test_transaction_outcomes_counted(self):
        registry = Registry()
        engine = InstrumentedEngine(InMemoryEngine(), telemetry=registry)
        engine.create_table("t", TableSchema(("k",), "k"))
        with engine.transaction():
            engine.insert("t", {"k": 1})
        with pytest.raises(RuntimeError):
            with engine.transaction():
                engine.insert("t", {"k": 2})
                raise RuntimeError("boom")
        txn = registry.counter("storage_transactions_total")
        assert txn.value(outcome="commit") == 1
        assert txn.value(outcome="abort") == 1
        assert not engine.exists("t", 2)


class TestBuildEngine:
    def test_default_is_instrumented_memory(self):
        engine = build_engine()
        assert isinstance(engine, InstrumentedEngine)
        assert isinstance(engine.inner, InMemoryEngine)

    def test_full_stack_composes(self):
        engine = build_engine(StorageConfig(shards=3, cache_capacity=16))
        engine.create_table("t", TableSchema(("k",), "k"))
        for i in range(9):
            engine.insert("t", {"k": i})
        # Engine-specific extras surface through both wrappers.
        assert sum(engine.shard_sizes("t")) == 9
        assert engine.cache_info()["capacity"] == 16

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(shards=0)
        with pytest.raises(ValueError):
            StorageConfig(latency=-0.1)

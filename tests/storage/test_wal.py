"""Write-ahead log: recovery determinism as a property, not an example.

The Hypothesis suites drive a :class:`WALEngine` with arbitrary mutation
sequences (including transactions and mixed bytes/str/int values) and
assert the durability contract:

* **replay reconstructs** — rebuilding from the log always yields the live
  engine's exact state (equal SHA-256 state digests), and doing it twice
  yields the same engine (idempotence);
* **any prefix is a valid state** — a log truncated at any record boundary
  (a crash mid-run) replays without error into the state the engine had at
  that point;
* **a crash between apply and append never corrupts** — losing the final,
  unlogged record recovers exactly the state before that operation;
* **torn tails and corruption are detected** — a half-written or
  bit-flipped line stops :func:`load_wal` at the last intact record.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.storage import (
    InMemoryEngine,
    TableSchema,
    WALEngine,
    load_wal,
    replay,
    state_digest,
)
from repro.storage.wal import capture_state, decode_row, encode_row

SCHEMA = TableSchema(
    columns=("id", "val", "blob"),
    primary_key="id",
    unique=(),
    indexed=("val",),
)

#: One mutation: (op, pk, value).  The interpreter below makes every
#: sequence applicable (skip inserts of live pks, updates/deletes of dead
#: ones), so shrinking stays simple and no sequence is rejected.
_VALUES = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.text(max_size=8),
    st.binary(max_size=8),
    st.none(),
)
_OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete"]),
              st.integers(min_value=0, max_value=7), _VALUES),
    max_size=40,
)


def _build(ops, snapshot_every=0, path=None):
    """Apply an op sequence through a WALEngine; returns the engine."""
    engine = WALEngine(
        InMemoryEngine(), snapshot_every=snapshot_every, path=path
    )
    engine.create_table("t", SCHEMA)
    _apply_ops(engine, ops)
    return engine

def _apply_ops(engine, ops):
    live = {row["id"] for row in engine.select("t")}
    for op, pk, value in ops:
        if op == "insert" and pk not in live:
            engine.insert("t", {"id": pk, "val": value, "blob": b"\x00" * (pk + 1)})
            live.add(pk)
        elif op == "update" and pk in live:
            engine.update("t", pk, {"val": value})
        elif op == "delete" and pk in live:
            engine.delete("t", pk)
            live.discard(pk)


class TestReplayReconstructs:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_replay_matches_live_state(self, ops):
        engine = _build(ops)
        assert state_digest(replay(engine.wal.records)) == engine.state_digest()

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_replay_is_idempotent(self, ops):
        engine = _build(ops)
        first = state_digest(replay(engine.wal.records))
        second = state_digest(replay(engine.wal.records))
        assert first == second == engine.state_digest()

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS, every=st.integers(min_value=1, max_value=7))
    def test_snapshot_plus_tail_equals_full_replay(self, ops, every):
        plain = _build(ops)
        snapshotted = _build(ops, snapshot_every=every)
        assert (
            state_digest(replay(snapshotted.wal.records))
            == plain.state_digest()
        )

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_bytes_round_trip(self, ops):
        engine = _build(ops)
        recovered = replay(engine.wal.records)
        live = sorted(engine.select("t"), key=lambda r: r["id"])
        back = sorted(recovered.select("t"), key=lambda r: r["id"])
        assert live == back  # bytes columns byte-identical, not reprs


class TestPrefixesAreValidStates:
    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS, data=st.data())
    def test_any_prefix_replays_cleanly(self, ops, data):
        engine = _build(ops)
        records = engine.wal.records
        cut = data.draw(st.integers(min_value=0, max_value=len(records)))
        replay(records[:cut])  # must not raise for any boundary

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_crash_between_apply_and_append_recovers_prior_state(self, ops):
        """The engine applies, then logs; a crash in between loses exactly
        the unlogged op.  Recovery must equal the state *before* it."""
        engine = _build(ops)
        records = engine.wal.records
        if len(records) <= 1:
            return
        shadow = replay(records[:-1])
        expected = _build_prefix_state(ops, records)
        assert state_digest(shadow) == expected

    def test_txn_abort_leaves_no_trace(self):
        engine = _build([("insert", 1, "a")])
        before = len(engine.wal.records)
        with pytest.raises(ValidationError):
            with engine.transaction():
                engine.insert("t", {"id": 2, "val": "x", "blob": b""})
                engine.insert("t", {"id": 2, "val": "dup", "blob": b""})
        assert len(engine.wal.records) == before
        assert state_digest(replay(engine.wal.records)) == engine.state_digest()

    def test_txn_is_one_atomic_record(self):
        engine = _build([])
        with engine.transaction():
            engine.insert("t", {"id": 1, "val": "a", "blob": b""})
            engine.insert("t", {"id": 2, "val": "b", "blob": b""})
            engine.update("t", 1, {"val": "c"})
        txn = engine.wal.records[-1]
        assert txn["op"] == "txn" and len(txn["ops"]) == 3
        # Dropping the txn record recovers the exact pre-transaction state.
        recovered = replay(engine.wal.records[:-1])
        assert recovered.row_count("t") == 0


def _build_prefix_state(ops, records):
    """Digest of the engine state just before the last logged record."""
    shadow = WALEngine(InMemoryEngine())
    shadow.create_table("t", SCHEMA)
    target = len(records) - 1
    live = set()
    for op, pk, value in ops:
        if len(shadow.wal.records) >= target:
            break
        if op == "insert" and pk not in live:
            shadow.insert("t", {"id": pk, "val": value, "blob": b"\x00" * (pk + 1)})
            live.add(pk)
        elif op == "update" and pk in live:
            shadow.update("t", pk, {"val": value})
        elif op == "delete" and pk in live:
            shadow.delete("t", pk)
            live.discard(pk)
    return shadow.state_digest()


class TestFileRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(ops=_OPS)
    def test_file_reload_matches(self, ops):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.wal")
            engine = _build(ops, path=path)
            engine.wal.close()
            records, dropped = load_wal(path)
            assert dropped == 0
            assert [r["lsn"] for r in records] == [
                r["lsn"] for r in engine.wal.records
            ]
            assert state_digest(replay(records)) == engine.state_digest()

    def test_torn_tail_truncated(self, tmp_path):
        path = str(tmp_path / "t.wal")
        engine = _build(
            [("insert", i, f"v{i}") for i in range(5)], path=path
        )
        engine.wal.close()
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[: len(content) - 12])  # tear the last line
        records, dropped = load_wal(path)
        assert dropped == 1
        assert len(records) == len(engine.wal.records) - 1
        replay(records)  # the surviving prefix is a valid state

    def test_corrupted_line_stops_the_read(self, tmp_path):
        path = str(tmp_path / "t.wal")
        engine = _build([("insert", i, "x") for i in range(6)], path=path)
        engine.wal.close()
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # Flip a byte inside record 3's payload: its CRC no longer matches.
        lines[3] = lines[3][:-2] + ("A" if lines[3][-2] != "A" else "B") + lines[3][-1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        records, dropped = load_wal(path)
        assert len(records) == 3
        assert dropped == len(lines) - 3  # everything after the bad record

    def test_lsn_gap_stops_the_read(self, tmp_path):
        path = str(tmp_path / "t.wal")
        engine = _build([("insert", i, "x") for i in range(6)], path=path)
        engine.wal.close()
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        del lines[2]  # a missing record: later ones may depend on it
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        records, _ = load_wal(path)
        assert len(records) == 2


class TestEncodingAndState:
    def test_encode_row_tags_bytes(self):
        row = {"a": b"\x01\x02", "b": "text", "c": 3}
        encoded = encode_row(row)
        assert encoded["a"] == {"__bytes__": "0102"}
        assert decode_row(encoded) == row

    def test_capture_state_is_insert_order_independent(self):
        left = InMemoryEngine()
        right = InMemoryEngine()
        for engine in (left, right):
            engine.create_table("t", SCHEMA)
        for pk in (1, 2, 3):
            left.insert("t", {"id": pk, "val": "v", "blob": None})
        for pk in (3, 1, 2):
            right.insert("t", {"id": pk, "val": "v", "blob": None})
        assert capture_state(left) == capture_state(right)
        assert state_digest(left) == state_digest(right)

    def test_snapshot_inside_transaction_refused(self):
        engine = _build([("insert", 1, "a")], snapshot_every=0)
        with pytest.raises(ValidationError):
            with engine.transaction():
                engine.snapshot()

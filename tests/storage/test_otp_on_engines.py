"""The OTP path on every engine stack: same behaviour, new observability.

The storage engine is pluggable exactly when the validation workflows are
indistinguishable across stacks — the tests here run the enrollment /
validate / lockout / unpair lifecycle against the default, sharded and
cached configurations and assert identical outcomes, then check the
stats/metrics surfaces the refactor added.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.totp import totp_at
from repro.otpserver import OTPServer, ValidateStatus
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.storage import StorageConfig
from repro.telemetry import Registry, render_text

STACKS = [
    pytest.param(None, id="default"),
    pytest.param(StorageConfig(shards=4), id="sharded"),
    pytest.param(StorageConfig(cache_capacity=64), id="cached"),
    pytest.param(StorageConfig(shards=3, cache_capacity=64), id="sharded+cached"),
]


def _server(storage, telemetry=None):
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    return (
        OTPServer(
            clock=clock, rng=random.Random(1), telemetry=telemetry, storage=storage
        ),
        clock,
    )


@pytest.mark.parametrize("storage", STACKS)
class TestLifecycleOnEveryStack:
    def test_soft_token_validate_and_replay(self, storage):
        server, clock = _server(storage)
        _, secret = server.enroll_soft("u1")
        code = totp_at(secret, clock.now())
        assert server.validate("u1", code).status is ValidateStatus.OK
        assert server.validate("u1", code).status is ValidateStatus.REJECT  # replay
        clock.advance(31)
        assert server.validate("u1", totp_at(secret, clock.now())).ok

    def test_lockout_and_reset(self, storage):
        server, _ = _server(storage)
        server.enroll_soft("u1")
        for _ in range(server.config.lockout_threshold):
            server.validate("u1", "000000")
        assert server.validate("u1", "000000").status is ValidateStatus.LOCKED
        assert server.is_locked("u1")
        server.clear_failcount("u1")
        assert not server.is_locked("u1")

    def test_unpair_removes_everything(self, storage):
        server, _ = _server(storage)
        server.enroll_sms("u1", "+1-512-555-0001")
        server.validate("u1", None)  # outstanding SMS challenge
        assert server.unpair("u1") == 1
        assert not server.has_pairing("u1")
        assert server.validate("u1", "123456").status is ValidateStatus.NO_TOKEN

    def test_token_count_by_type_uses_index(self, storage):
        server, _ = _server(storage)
        for i in range(6):
            server.enroll_soft(f"soft{i}")
        for i in range(3):
            server.enroll_sms(f"sms{i}", f"+1-512-555-{i:04d}")
        server.enroll_static("train0", "424242")
        assert server.token_count_by_type() == {"soft": 6, "sms": 3, "static": 1}


class TestStorageStats:
    def test_sharded_cached_stats_shape(self):
        server, _ = _server(StorageConfig(shards=4, cache_capacity=32))
        for i in range(8):
            server.enroll_soft(f"u{i}")
        stats = server.storage_stats()
        assert stats["tables"]["tokens"] == 8
        assert len(stats["shards"]) == 4 and sum(stats["shards"]) == 8
        assert stats["cache"]["capacity"] == 32

    def test_admin_api_storage_route(self):
        server, _ = _server(StorageConfig(shards=2))
        server.enroll_soft("u1")
        api = AdminAPI(server, rng=random.Random(2))
        api.add_admin("portal", "secret")
        client = AdminAPIClient(api, "portal", "secret", rng=random.Random(3))
        body = client.call("GET", "/admin/storage")
        assert body["tables"]["tokens"] == 1
        assert len(body["shards"]) == 2


class TestStorageTelemetry:
    def test_op_metrics_land_in_server_registry(self):
        registry = Registry()
        server, clock = _server(
            StorageConfig(shards=2, cache_capacity=16), telemetry=registry
        )
        _, secret = server.enroll_soft("u1")
        server.validate("u1", totp_at(secret, clock.now()))
        server.validate("u1", totp_at(secret, clock.now()))  # replay reject
        text = render_text(registry.snapshot())
        assert "storage_ops_total" in text
        assert "storage_op_seconds" in text
        assert "storage_shard_rows" in text
        ops = registry.counter("storage_ops_total")
        assert ops.value(op="select", table="tokens") > 0
        assert ops.value(op="update", table="tokens") > 0

"""Replica groups: log shipping, deterministic promotion, rejoin-by-replay."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import ValidationError
from repro.storage import (
    ReplicaGroup,
    ReplicatedEngine,
    StorageConfig,
    TableSchema,
    build_engine,
    find_layer,
    state_digest,
)

SCHEMA = TableSchema(
    columns=("id", "name", "secret"),
    primary_key="id",
    unique=("name",),
    indexed=(),
)


def _group(replicas=2, **kwargs):
    group = ReplicaGroup(replicas=replicas, **kwargs)
    group.create_table("t", SCHEMA)
    return group


def _fill(engine, start=0, count=10):
    for i in range(start, start + count):
        engine.insert("t", {"id": i, "name": f"n{i}", "secret": bytes([i % 256])})


class TestShipping:
    def test_replicas_track_every_mutation(self):
        group = _group()
        _fill(group)
        group.update("t", 3, {"secret": b"\xff"})
        group.delete("t", 7)
        primary = state_digest(group.inner)
        for replica in group.replicas:
            assert state_digest(replica.engine) == primary
            assert replica.applied_lsn == group.wal.last_lsn

    def test_transactions_ship_atomically(self):
        group = _group()
        with group.transaction():
            group.insert("t", {"id": 1, "name": "a", "secret": b""})
            group.insert("t", {"id": 2, "name": "b", "secret": b""})
        assert all(
            state_digest(r.engine) == state_digest(group.inner)
            for r in group.replicas
        )

    def test_aborted_transaction_ships_nothing(self):
        group = _group()
        _fill(group, count=3)
        head = group.wal.last_lsn
        with pytest.raises(ValidationError):
            with group.transaction():
                group.insert("t", {"id": 50, "name": "x", "secret": b""})
                group.insert("t", {"id": 0, "name": "dup-pk", "secret": b""})
        assert group.wal.last_lsn == head
        assert all(r.applied_lsn == head for r in group.replicas)

    def test_snapshot_records_ship_as_position_only(self):
        group = _group(snapshot_every=3)
        _fill(group, count=7)
        assert group.wal.snapshots >= 1
        for replica in group.replicas:
            assert replica.applied_lsn == group.wal.last_lsn
            assert state_digest(replica.engine) == state_digest(group.inner)

    def test_ship_latency_charged_to_injected_clock(self):
        clock = VirtualClock(start=0.0)
        group = ReplicaGroup(replicas=1, ship_latency=0.5, clock=clock)
        group.create_table("t", SCHEMA)
        before = clock.now()
        _fill(group, count=4)
        # 4 insert records x 0.5 s simulated ship time, no wall sleeping.
        assert clock.now() - before == pytest.approx(2.0)


class TestPromotion:
    def test_promotion_preserves_state(self):
        group = _group()
        _fill(group)
        pre = state_digest(group.inner)
        info = group.crash_primary()
        assert info["match"] is True
        assert state_digest(group.inner) == pre
        assert group.promotions == 1

    def test_promotion_is_deterministic_max_lsn_then_lowest_id(self):
        group = _group(replicas=3)
        _fill(group)
        # All replicas equally caught up -> lowest node id (1) wins.
        info = group.crash_primary()
        assert info["new_primary"] == 1

    def test_promoted_primary_takes_writes(self):
        group = _group()
        _fill(group)
        group.crash_primary()
        _fill(group, start=100, count=5)
        assert group.row_count("t") == 15
        assert all(
            r.applied_lsn == group.wal.last_lsn for r in group.replicas
        )

    def test_no_replica_no_promotion(self):
        group = _group(replicas=0)
        _fill(group, count=2)
        with pytest.raises(ValidationError):
            group.crash_primary()

    def test_double_crash_without_rejoin_refused(self):
        group = _group(replicas=2)
        _fill(group, count=2)
        group.crash_primary()
        with pytest.raises(ValidationError):
            group.crash_primary()


class TestRejoin:
    def test_rejoin_catches_up_from_log(self):
        group = _group()
        _fill(group)
        group.crash_primary()
        _fill(group, start=100, count=8)  # writes the dead node never saw
        info = group.rejoin()
        assert info["match"] is True
        rejoined = next(r for r in group.replicas if r.node_id == info["node"])
        assert state_digest(rejoined.engine) == state_digest(group.inner)
        assert rejoined.applied_lsn == group.wal.last_lsn

    def test_rejoin_without_crash_refused(self):
        group = _group()
        with pytest.raises(ValidationError):
            group.rejoin()

    def test_crash_promote_rejoin_cycle_repeats(self):
        group = _group()
        _fill(group)
        for round_no in range(3):
            group.crash_primary()
            _fill(group, start=1000 + round_no * 10, count=3)
            assert group.rejoin()["match"] is True
        assert group.promotions == 3
        assert group.row_count("t") == 19


class TestReplicatedEngine:
    def test_build_engine_assembles_replication(self):
        engine = build_engine(StorageConfig(shards=2, replicas=2))
        layer = find_layer(engine, "replication_stats")
        assert layer is not None
        stats = layer.replication_stats()
        assert stats["shards"] == 2 and stats["replicas_per_shard"] == 2

    def test_replicas_imply_durability(self):
        assert StorageConfig(replicas=1).durable
        assert StorageConfig(durability=True).durable
        assert not StorageConfig().durable

    def test_cross_shard_behaviour_survives_promotion(self):
        engine = ReplicatedEngine(shards=3, replicas=2)
        engine.create_table("t", SCHEMA)
        _fill(engine, count=30)
        digests = engine.state_digests()
        for shard in range(3):
            assert engine.crash_primary(shard)["match"] is True
        assert engine.state_digests() == digests
        assert engine.row_count("t") == 30
        # Unique routing still enforced across shards after promotions.
        with pytest.raises(ValidationError):
            engine.insert("t", {"id": 999, "name": "n5", "secret": b""})
        for shard in range(3):
            assert engine.rejoin(shard)["match"] is True
        assert engine.replication_stats()["all_caught_up"] is True

    def test_replication_stats_shape(self):
        engine = ReplicatedEngine(shards=2, replicas=1)
        engine.create_table("t", SCHEMA)
        _fill(engine, count=4)
        stats = engine.replication_stats()
        assert stats["promotions"] == 0
        assert stats["all_caught_up"] is True
        assert len(stats["groups"]) == 2
        group = stats["groups"][0]
        assert {"group", "primary", "last_lsn", "replicas", "wal"} <= set(group)

    def test_wal_files_per_shard(self, tmp_path):
        engine = ReplicatedEngine(shards=2, replicas=1, wal_dir=str(tmp_path))
        engine.create_table("t", SCHEMA)
        _fill(engine, count=6)
        for group in engine.groups:
            group.wal.close()
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "shard0.wal",
            "shard1.wal",
        ]

"""The Section 4.1 login-audit pipeline."""

import pytest

from repro.common.clock import SimulatedClock
from repro.analysis.loginaudit import LoginAuditor
from repro.ssh.authlog import AuthLog


@pytest.fixture
def log():
    clock = SimulatedClock(0.0)
    authlog = AuthLog(clock)
    # Heavy automated user: 200 TTY-less entries from one host.
    for _ in range(200):
        authlog.append("session_open", "robot1", "203.0.113.5", tty=False)
    # Moderate automated user.
    for _ in range(80):
        authlog.append("session_open", "robot2", "203.0.113.6", tty=False)
    # Staff member: 50 mixed entries.
    for i in range(50):
        authlog.append("session_open", "staff1", "129.114.0.9", tty=i % 2 == 0)
    # Known gateway: enormous volume, but filtered out of targeting.
    for _ in range(500):
        authlog.append("session_open", "gateway01", "198.51.100.1", tty=False)
    # Ordinary interactive users.
    for i in range(20):
        authlog.append("session_open", f"user{i:02d}", f"198.51.0.{i}", tty=True)
    # Shared account: many origins.
    for i in range(30):
        authlog.append("session_open", "shared", f"10.{i}.1.1", tty=True)
    # Failed logins should not count as entries.
    authlog.append("auth_failure", "user00", "198.51.0.0")
    return authlog


@pytest.fixture
def auditor(log):
    return LoginAuditor(log.entries())


class TestAggregation:
    def test_user_count(self, auditor):
        assert len(auditor) == 25  # robot1, robot2, staff1, gateway01, 20 users, shared

    def test_entry_events_only(self, auditor):
        # The failed login did not count.
        assert auditor.activity("user00").total_events == 1

    def test_tty_accounting(self, auditor):
        staff = auditor.activity("staff1")
        assert staff.total_events == 50
        assert staff.tty_events == 25
        assert staff.notty_fraction == pytest.approx(0.5)

    def test_unknown_user_zero_activity(self, auditor):
        assert auditor.activity("ghost").total_events == 0


class TestRankingAndTargeting:
    def test_ranked_descending(self, auditor):
        ranked = auditor.ranked()
        counts = [a.total_events for a in ranked]
        assert counts == sorted(counts, reverse=True)
        assert ranked[0].username == "gateway01"

    def test_staff_threshold(self, auditor):
        assert auditor.staff_threshold(["staff1"]) == 50

    def test_targets_above_staff_filtered(self, auditor):
        """Users above the staff cutoff, minus staff and known gateways."""
        targets = auditor.targets(["staff1"], known_service_accounts=["gateway01"])
        names = [t.username for t in targets]
        assert names == ["robot1", "robot2"]

    def test_gateway_not_in_targets(self, auditor):
        targets = auditor.targets(["staff1"], known_service_accounts=["gateway01"])
        assert all(t.username != "gateway01" for t in targets)

    def test_no_staff_means_everyone_targeted(self, auditor):
        targets = auditor.targets([], known_service_accounts=[])
        assert len(targets) == len(auditor.ranked())


class TestAutomationDetection:
    def test_automation_summary(self, auditor):
        count, share = auditor.automation_summary()
        # robot1, robot2, gateway01 are >80% TTY-less.
        assert count == 3
        # "a minority of users were responsible for the majority of entries"
        assert share > 0.5

    def test_concentration(self, auditor):
        # The top 10% of 25 users is 2 accounts; they dominate.
        assert auditor.concentration(0.1) > 0.5

    def test_shared_account_detection(self, auditor):
        suspects = auditor.shared_account_suspects(min_ips=8, min_events=20)
        assert "shared" in suspects
        assert "robot1" not in suspects  # one origin only

    def test_histogram(self, auditor):
        histogram = auditor.event_histogram()
        assert histogram[1] == 20  # the 20 ordinary users, one entry each

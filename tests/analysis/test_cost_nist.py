"""Cost model (build-vs-buy economics) and NIST LoA classification."""

import pytest

from repro.analysis.cost import CommercialVendor, CostModel, InHouseCosts
from repro.analysis.nist import FactorKind, level_of_assurance, pairing_loa


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CostModel()

    def test_commercial_scales_linearly(self, model):
        c1 = model.vendor.annual_cost(1_000)
        c10 = model.vendor.annual_cost(10_000)
        # Dominated by the per-user term.
        assert c10 / c1 > 8

    def test_in_house_mostly_fixed(self, model):
        i1 = model.in_house.annual_cost(1_000)
        i10 = model.in_house.annual_cost(10_000)
        assert i10 / i1 < 3  # only SMS usage grows

    def test_crossover_below_paper_scale(self, model):
        """At TACC's >10,000 accounts, in-house must already win."""
        crossover = model.crossover_users()
        assert crossover < 10_000

    def test_in_house_wins_at_10k(self, model):
        costs = model.annual(10_000)
        assert costs["in_house"] < costs["commercial"]

    def test_commercial_wins_at_small_scale(self, model):
        costs = model.annual(100)
        assert costs["commercial"] < costs["in_house"]

    def test_sweep_rows(self, model):
        rows = model.sweep([100, 1_000, 10_000])
        assert len(rows) == 3
        assert rows[0][0] == 100
        assert all(len(r) == 3 for r in rows)

    def test_per_user_cost_drops_with_scale(self, model):
        small = model.per_user_annual(2_000)["in_house"]
        large = model.per_user_annual(20_000)["in_house"]
        assert large < small

    def test_custom_vendor_pricing(self):
        cheap = CostModel(vendor=CommercialVendor(per_user_per_month=0.10))
        # A dollar-a-year vendor moves the crossover far out.
        assert cheap.crossover_users() > CostModel().crossover_users()

    def test_development_amortization_included(self):
        with_dev = InHouseCosts().annual_cost(5_000, include_development=True)
        without = InHouseCosts().annual_cost(5_000, include_development=False)
        assert with_dev > without


class TestNIST:
    def test_paper_claim_password_plus_otp_is_loa3(self):
        """"increases our Level of Assurance ... from a level 2 to a 3"."""
        assert level_of_assurance([FactorKind.MEMORIZED_SECRET]) == 2
        assert (
            level_of_assurance([FactorKind.MEMORIZED_SECRET, FactorKind.OTP_DEVICE])
            == 3
        )

    def test_pubkey_plus_otp_is_loa3(self):
        assert level_of_assurance([FactorKind.KEY_PAIR, FactorKind.OTP_DEVICE]) == 3

    def test_sms_out_of_band_counts(self):
        assert level_of_assurance([FactorKind.MEMORIZED_SECRET, FactorKind.OUT_OF_BAND]) == 3

    def test_otp_alone_is_loa2(self):
        assert level_of_assurance([FactorKind.OTP_DEVICE]) == 2

    def test_nothing_is_loa1(self):
        assert level_of_assurance([]) == 1

    def test_static_code_alone_is_loa1(self):
        assert level_of_assurance([FactorKind.STATIC_CODE]) == 1

    def test_hardware_crypto_reaches_loa4(self):
        assert (
            level_of_assurance([FactorKind.MEMORIZED_SECRET, FactorKind.HARDWARE_CRYPTO])
            == 4
        )

    def test_two_first_factors_still_loa2(self):
        """Password + pubkey is not multi-factor (both 'something you
        know/have' in the same bucket for this deployment)."""
        assert level_of_assurance([FactorKind.MEMORIZED_SECRET, FactorKind.KEY_PAIR]) == 2

    @pytest.mark.parametrize(
        "pairing,expected",
        [("soft", 3), ("hard", 3), ("sms", 3), ("training", 2)],
    )
    def test_pairing_loa(self, pairing, expected):
        assert pairing_loa(pairing, "password") == expected

    def test_pairing_loa_pubkey_first_factor(self):
        assert pairing_loa("soft", "publickey") == 3


class TestAssuranceProfile:
    def make_identity(self):
        from repro.directory.identity import IdentityBackend, PairingStatus

        identity = IdentityBackend()
        for name, status in [
            ("a", PairingStatus.SOFT),
            ("b", PairingStatus.SMS),
            ("c", PairingStatus.HARD),
            ("d", PairingStatus.TRAINING),
            ("e", PairingStatus.UNPAIRED),
        ]:
            identity.create_account(name, f"{name}@x.edu", password="pw")
            if status is not PairingStatus.UNPAIRED:
                identity.notify_pairing(name, status)
        return identity

    def test_census(self):
        from repro.analysis.assurance import assurance_profile

        profile = assurance_profile(self.make_identity())
        assert profile.total == 5
        # soft/sms/hard reach LoA 3; training and unpaired stay at LoA 2.
        assert profile.accounts_by_loa == {3: 3, 2: 2}
        assert profile.share_at_or_above_3 == pytest.approx(0.6)
        assert profile.modal_loa == 3

    def test_describe(self):
        from repro.analysis.assurance import assurance_profile

        text = assurance_profile(self.make_identity()).describe()
        assert "LoA3: 3" in text and "60%" in text

    def test_empty_identity(self):
        from repro.analysis.assurance import assurance_profile
        from repro.directory.identity import IdentityBackend

        profile = assurance_profile(IdentityBackend())
        assert profile.share_at_or_above_3 == 0.0
        assert profile.modal_loa == 1

    def test_paper_claim_transition_raises_loa(self):
        """"increases our Level of Assurance ... from a level 2 to a level
        3" — the census before pairing vs after."""
        from repro.analysis.assurance import assurance_profile
        from repro.directory.identity import IdentityBackend, PairingStatus

        identity = IdentityBackend()
        for i in range(10):
            identity.create_account(f"u{i}", f"u{i}@x.edu", password="pw")
        before = assurance_profile(identity)
        assert before.modal_loa == 2
        for i in range(10):
            identity.notify_pairing(f"u{i}", PairingStatus.SOFT)
        after = assurance_profile(identity)
        assert after.modal_loa == 3
        assert after.share_at_or_above_3 == 1.0

"""The evaluation report generator and the CLI entry point."""

import pytest

from repro.analysis.report import evaluation_report
from repro.sim import RolloutConfig, RolloutSimulation


@pytest.fixture(scope="module")
def report_text():
    sim = RolloutSimulation(
        RolloutConfig(population_size=400, seed=20160810, real_login_fraction=0.0)
    )
    return evaluation_report(simulation=sim)


class TestEvaluationReport:
    def test_covers_every_artifact(self, report_text):
        for artifact in ("Figure 3", "Figure 4", "Figure 5", "Figure 6",
                         "Table 1", "Cost model"):
            assert artifact in report_text

    def test_reports_consistency_check(self, report_text):
        assert "mismatches" in report_text

    def test_shapes_all_ok(self, report_text):
        assert "MISMATCH" not in report_text
        assert report_text.count("OK") >= 5

    def test_paper_reference_numbers_shown(self, report_text):
        assert "paper 6.7%" in report_text
        assert "55.38" in report_text

    def test_crossover_reported(self, report_text):
        assert "crossover" in report_text

    def test_assurance_profile_reported(self, report_text):
        assert "Level of Assurance" in report_text
        assert "LoA 3+" in report_text


class TestCLI:
    def test_unknown_command_usage(self, capsys):
        from repro.__main__ import main

        assert main(["frobnicate"]) == 2
        assert "report" in capsys.readouterr().err

    def test_qr_command(self, capsys):
        from repro.__main__ import main

        assert main(["qr", "hello world"]) == 0
        out = capsys.readouterr().out
        assert "##" in out

    def test_qr_requires_text(self, capsys):
        from repro.__main__ import main

        assert main(["qr"]) == 2

    def test_demo_command(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        assert "GRANTED" in capsys.readouterr().out

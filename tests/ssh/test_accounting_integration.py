"""SSH daemon <-> RADIUS accounting integration."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.radius.accounting import AccountingClient, AccountingServer
from repro.ssh import SSHClient


@pytest.fixture
def rig():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1))
    system = center.add_system("stampede", mode="full")
    acct_server = AccountingServer(
        "10.0.0.50:1813", center.fabric, b"acct-secret", clock=clock
    )
    node = system.login_node()
    node._accounting = AccountingClient(
        center.fabric, acct_server.address, b"acct-secret", node.hostname
    )
    center.create_user("alice", password="pw")
    _, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)

    class Rig:
        pass

    r = Rig()
    r.clock, r.center, r.node, r.device, r.acct = clock, center, node, device, acct_server
    return r


class TestSessionAccounting:
    def test_login_emits_start(self, rig):
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(rig.node, "alice", password="pw",
                                   token=rig.device.current_code)
        assert result.success
        sessions = rig.acct.sessions_for("alice")
        assert len(sessions) == 1 and sessions[0].open

    def test_disconnect_emits_stop_with_duration(self, rig):
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(rig.node, "alice", password="pw",
                                   token=rig.device.current_code)
        rig.clock.advance(7200)
        rig.node.disconnect(result.connection_id)
        record = rig.acct.sessions_for("alice")[0]
        assert not record.open
        assert record.session_time == 7200

    def test_failed_login_no_accounting(self, rig):
        client = SSHClient("198.51.100.7")
        client.connect(rig.node, "alice", password="wrong", token="000000")
        assert rig.acct.sessions_for("alice") == []

    def test_session_count_accumulates(self, rig):
        client = SSHClient("198.51.100.7")
        for _ in range(5):
            rig.clock.advance(31)
            result, _ = client.connect(rig.node, "alice", password="pw",
                                       token=rig.device.current_code)
            rig.node.disconnect(result.connection_id)
        assert rig.acct.total_sessions() == 5
        assert rig.acct.open_sessions() == []

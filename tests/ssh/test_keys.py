"""Key pairs: fingerprints, possession proofs."""

import random

from repro.ssh.keys import KeyPair, fingerprint


class TestKeyPair:
    def test_generate_deterministic(self):
        a = KeyPair.generate(rng=random.Random(1))
        b = KeyPair.generate(rng=random.Random(1))
        assert a.private_seed == b.private_seed

    def test_distinct_keys(self):
        a = KeyPair.generate(rng=random.Random(1))
        b = KeyPair.generate(rng=random.Random(2))
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_format(self):
        key = KeyPair.generate(rng=random.Random(3))
        assert key.fingerprint.startswith("SHA256:")

    def test_fingerprint_of_public_key(self):
        key = KeyPair.generate(rng=random.Random(4))
        assert key.fingerprint == fingerprint(key.public_key)

    def test_public_key_hides_private_seed(self):
        key = KeyPair.generate(rng=random.Random(5))
        assert key.private_seed.hex() not in key.public_key

    def test_comment_in_public_key(self):
        key = KeyPair.generate(comment="alice@laptop", rng=random.Random(6))
        assert key.public_key.endswith("alice@laptop")

    def test_sign_verify(self):
        key = KeyPair.generate(rng=random.Random(7))
        challenge = b"login-challenge"
        assert key.verify_with_public(challenge, key.sign(challenge))

    def test_wrong_signature_rejected(self):
        key = KeyPair.generate(rng=random.Random(8))
        other = KeyPair.generate(rng=random.Random(9))
        challenge = b"login-challenge"
        assert not key.verify_with_public(challenge, other.sign(challenge))

    def test_signature_bound_to_challenge(self):
        key = KeyPair.generate(rng=random.Random(10))
        assert not key.verify_with_public(b"challenge-2", key.sign(b"challenge-1"))

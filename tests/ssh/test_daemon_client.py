"""SSH daemon + client: first factor, retries, banners, multiplexing."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.totp import TOTPGenerator
from repro.core import MFACenter
from repro.ssh.client import PromptAnswers, SSHClient
from repro.ssh.keys import KeyPair


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def rig(clock):
    center = MFACenter(clock=clock, rng=random.Random(1))
    system = center.add_system("stampede", mode="full")
    center.create_user("alice", password="pw")
    serial, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)

    class Rig:
        pass

    r = Rig()
    r.center, r.system, r.device = center, system, device
    r.node = system.login_node()
    return r


class TestFirstFactor:
    def test_password_login(self, rig):
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            rig.node, "alice", password="pw", token=rig.device.current_code
        )
        assert result.success
        assert result.session_items["first_factor"] == "password"

    def test_password_retry_budget(self, rig, clock):
        """Three password attempts, as sshd restarts the PAM stack."""
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            rig.node, "alice", password="wrong", token=rig.device.current_code
        )
        assert not result.success
        assert result.password_attempts == 3

    def test_second_attempt_can_succeed(self, rig, clock):
        answers = iter(["wrong", "pw"])
        conversation_answers = {"password": lambda: next(answers),
                                "token code": rig.device.current_code}
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            rig.node, "alice", extra_answers=conversation_answers
        )
        assert result.success
        assert result.password_attempts == 2

    def test_pubkey_skips_password(self, rig, clock):
        key = KeyPair.generate(rng=random.Random(2))
        rig.node.authorize_key("alice", key)
        client = SSHClient("198.51.100.7")
        result, conversation = client.connect(
            rig.node, "alice", key=key, token=rig.device.current_code
        )
        assert result.success
        assert result.session_items["first_factor"] == "publickey"
        assert not any("assword" in p for p in conversation.prompts_seen)

    def test_unauthorized_key_falls_back_to_password(self, rig):
        key = KeyPair.generate(rng=random.Random(3))  # never authorized
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            rig.node, "alice", key=key, password="pw", token=rig.device.current_code
        )
        assert result.success
        assert result.session_items["first_factor"] == "password"

    def test_unknown_account_rejected(self, rig):
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(rig.node, "ghost", password="pw", token="123456")
        assert not result.success

    def test_banner_displayed(self, rig):
        client = SSHClient("198.51.100.7")
        _, conversation = client.connect(
            rig.node, "alice", password="pw", token=rig.device.current_code
        )
        assert any("multi-factor" in m for m in conversation.displayed)


class TestLoggingAndCounters:
    def test_session_open_logged_with_tty(self, rig):
        client = SSHClient("198.51.100.7")
        client.connect(rig.node, "alice", password="pw",
                       token=rig.device.current_code, tty=True)
        entries = rig.node.authlog.recent(60, event="session_open")
        assert entries and entries[-1].tty

    def test_failure_logged(self, rig):
        client = SSHClient("198.51.100.7")
        client.connect(rig.node, "alice", password="nope", token="000000")
        assert rig.node.authlog.recent(60, event="auth_failure")

    def test_counters(self, rig, clock):
        client = SSHClient("198.51.100.7")
        client.connect(rig.node, "alice", password="pw", token=rig.device.current_code)
        clock.advance(31)
        client.connect(rig.node, "alice", password="bad", token="000000")
        assert rig.node.logins_accepted == 1
        assert rig.node.logins_rejected == 1


class TestMultiplexing:
    def test_channels_reuse_master(self, rig):
        client = SSHClient("198.51.100.7", multiplex=True)
        result, _ = client.connect(
            rig.node, "alice", password="pw", token=rig.device.current_code
        )
        assert result.success
        accepted_before = rig.node.logins_accepted
        assert client.run_batch(rig.node, "alice", 20) == 20
        # No new authentications happened.
        assert rig.node.logins_accepted == accepted_before
        channels = rig.node.authlog.recent(60, event="multiplexed_channel")
        assert len(channels) == 20

    def test_non_multiplexed_batch_fails_without_token(self, rig):
        """The scripted-workflow breakage: no token provider, no entry."""
        client = SSHClient("198.51.100.7", multiplex=False)
        assert client.run_batch(rig.node, "alice", 5, password="pw") == 0

    def test_master_reconnects_after_daemon_drop(self, rig, clock):
        client = SSHClient("198.51.100.7", multiplex=True)
        result, _ = client.connect(
            rig.node, "alice", password="pw", token=rig.device.current_code
        )
        rig.node.disconnect(result.connection_id)
        clock.advance(31)
        result2, _ = client.connect(
            rig.node, "alice", password="pw", token=rig.device.current_code
        )
        assert result2.success
        assert result2.connection_id != result.connection_id

    def test_disconnect_all(self, rig):
        client = SSHClient("198.51.100.7", multiplex=True)
        client.connect(rig.node, "alice", password="pw", token=rig.device.current_code)
        assert rig.node.open_connections()
        client.disconnect_all()
        assert not rig.node.open_connections()


class TestPromptAnswers:
    def test_substring_routing(self):
        conversation = PromptAnswers({"password": "pw", "token": "123456"})
        assert conversation.prompt_echo_off("Password: ") == "pw"
        assert conversation.prompt_echo_off("TACC Token Code: ") == "123456"

    def test_callable_answers(self):
        calls = []
        conversation = PromptAnswers({"token": lambda: calls.append(1) or "999999"})
        assert conversation.prompt_echo_off("Token Code: ") == "999999"
        assert calls == [1]

    def test_unmatched_hidden_prompt_aborts(self):
        from repro.pam.conversation import ConversationError

        conversation = PromptAnswers({})
        with pytest.raises(ConversationError):
            conversation.prompt_echo_off("Token Code: ")

    def test_unmatched_visible_prompt_returns_empty(self):
        conversation = PromptAnswers({})
        assert conversation.prompt_echo_on("Press return: ") == ""

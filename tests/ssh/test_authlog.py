"""Secure log: formatting, windowed queries, rotation."""

import pytest

from repro.common.clock import SimulatedClock
from repro.ssh.authlog import AuthLog


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


@pytest.fixture
def log(clock):
    return AuthLog(clock)


class TestAppendAndFormat:
    def test_openssh_style_lines(self, log):
        entry = log.append("accepted_publickey", "alice", "1.2.3.4", detail="SHA256:xx")
        assert "Accepted publickey for alice from 1.2.3.4" in entry.format()
        entry = log.append("accepted_password", "alice", "1.2.3.4")
        assert "Accepted password for alice" in entry.format()
        entry = log.append("failed_password", "alice", "1.2.3.4")
        assert "Failed password" in entry.format()

    def test_entry_audit_format(self, log):
        entry = log.append("session_open", "alice", "1.2.3.4", tty=True)
        line = entry.format()
        assert "user=alice" in line and "tty=yes" in line

    def test_tty_flag_recorded(self, log):
        assert log.append("session_open", "a", "1.1.1.1", tty=False).tty is False


class TestQueries:
    def test_recent_window(self, log, clock):
        log.append("accepted_publickey", "alice", "1.2.3.4")
        clock.advance(100)
        log.append("accepted_publickey", "bob", "5.6.7.8")
        recent = log.recent(50)
        assert len(recent) == 1 and recent[0].username == "bob"

    def test_recent_filters(self, log):
        log.append("accepted_publickey", "alice", "1.2.3.4")
        log.append("session_open", "alice", "1.2.3.4")
        log.append("accepted_publickey", "bob", "1.2.3.4")
        assert len(log.recent(60, event="accepted_publickey")) == 2
        assert len(log.recent(60, event="accepted_publickey", username="alice")) == 1

    def test_publickey_accepted_recently(self, log, clock):
        log.append("accepted_publickey", "alice", "1.2.3.4")
        assert log.publickey_accepted_recently("alice", "1.2.3.4")
        assert not log.publickey_accepted_recently("alice", "9.9.9.9")
        assert not log.publickey_accepted_recently("bob", "1.2.3.4")
        clock.advance(31)
        assert not log.publickey_accepted_recently("alice", "1.2.3.4")

    def test_ordering_oldest_first(self, log, clock):
        log.append("session_open", "a", "1.1.1.1")
        clock.advance(1)
        log.append("session_open", "b", "1.1.1.1")
        recent = log.recent(60)
        assert [e.username for e in recent] == ["a", "b"]


class TestRotation:
    def test_rotation_bounds_memory(self, clock):
        log = AuthLog(clock, max_entries=100)
        for i in range(150):
            log.append("session_open", f"u{i}", "1.1.1.1")
        assert len(log) <= 101
        # The newest entries survive rotation.
        assert log.entries()[-1].username == "u149"

"""SubmitAPI conformance: every batch-capable seam speaks the protocol.

The redesign replaced ``getattr(backend, "validate_many", None)`` duck
typing with one formal contract (``submit``/``submit_many`` returning
:class:`Ticket`).  These tests pin the protocol surface: conformance by
``isinstance``, ticket semantics, and the deprecation path for the old
``validate_many`` spelling.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.ingest import IngestQueue, QueuedBackend
from repro.otpserver import OTPServer, SubmitAPI, Ticket
from repro.otpserver.results import ValidateResult, ValidateStatus


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def otp(clock):
    server = OTPServer(clock=clock, rng=random.Random(1))
    for i in range(3):
        server.enroll_static(f"user{i}", "424242")
    return server


@pytest.fixture
def center(clock):
    center = MFACenter(clock=clock, rng=random.Random(2))
    center.add_system("stampede", mode="full")
    return center


class TestTicket:
    def test_completed_is_done_immediately(self):
        ticket = Ticket.completed("value")
        assert ticket.done()
        assert ticket.result() == "value"
        assert ticket.result(timeout=0.0) == "value"  # idempotent

    def test_resolve_then_result(self):
        ticket = Ticket()
        assert not ticket.done()
        ticket.resolve(41 + 1)
        assert ticket.result() == 42

    def test_unresolved_result_times_out(self):
        with pytest.raises(TimeoutError):
            Ticket().result(timeout=0.01)

    def test_drain_hook_pumps_on_result(self):
        ticket = Ticket(drain=lambda t: t.resolve("pumped"))
        assert ticket.result(timeout=0.1) == "pumped"


class TestConformance:
    def test_all_batch_seams_satisfy_protocol(self, clock, otp, center):
        queue = IngestQueue(otp.validate, clock=clock)
        implementations = {
            "OTPServer": otp,
            "AuthPipeline": otp.pipeline,
            "UsernameResolvingBackend": center.radius_backend,
            "IngestQueue": queue,
            "QueuedBackend": QueuedBackend(otp, queue),
        }
        for name, impl in implementations.items():
            assert isinstance(impl, SubmitAPI), f"{name} lost SubmitAPI"

    def test_plain_validate_only_backend_is_not_submitapi(self):
        class Legacy:
            def validate(self, user, code):
                return ValidateResult(ValidateStatus.OK)

        assert not isinstance(Legacy(), SubmitAPI)


class TestOTPServer:
    def test_submit_returns_resolved_ticket(self, otp):
        ticket = otp.submit(("user0", "424242"))
        assert ticket.done()
        assert ticket.result().ok

    def test_submit_many_order_and_results(self, otp):
        tickets = otp.submit_many(
            [("user0", "424242"), ("user1", "000000"), ("user2", "424242")]
        )
        outcomes = [t.result().ok for t in tickets]
        assert outcomes == [True, False, True]

    def test_validate_many_warns_but_matches(self, otp):
        requests = [("user0", "424242"), ("user1", "424242")]
        with pytest.deprecated_call():
            old = otp.validate_many(requests)
        new = [t.result() for t in otp.submit_many(requests)]
        assert [r.status for r in old] == [r.status for r in new]


class TestAuthPipeline:
    def test_submit_matches_run(self, otp):
        pipeline = otp.pipeline
        via_run = pipeline.run("user0", "424242")
        via_submit = pipeline.submit(("user0", "424242")).result()
        assert via_submit.status == via_run.status

    def test_validate_many_deprecated(self, otp):
        with pytest.deprecated_call():
            results = otp.pipeline.validate_many([("user0", "424242")])
        assert results[0].ok


class TestUsernameResolvingBackend:
    def enroll(self, center, username):
        center.create_user(username, password="pw")
        return center.pair_training(username)

    def test_submit_many_resolves_usernames(self, center):
        code = self.enroll(center, "alice")
        tickets = center.radius_backend.submit_many(
            [("alice", code), ("alice", "999999")]
        )
        assert tickets[0].result().ok
        assert not tickets[1].result().ok

    def test_unknown_user_rejected_without_backend_call(self, center):
        (ticket,) = center.radius_backend.submit_many([("ghost", "424242")])
        assert ticket.done()
        assert not ticket.result().ok

    def test_validate_many_deprecated(self, center):
        code = self.enroll(center, "bob")
        with pytest.deprecated_call():
            results = center.radius_backend.validate_many([("bob", code)])
        assert results[0].ok


class TestIngestDeployment:
    def test_center_with_ingest_wraps_backend(self, clock):
        center = MFACenter(clock=clock, rng=random.Random(3), ingest=True)
        center.add_system("stampede", mode="full")
        assert center.ingest_queue is not None
        assert isinstance(center.radius_backend, QueuedBackend)
        center.create_user("alice", password="pw")
        code = center.pair_training("alice")
        assert center.radius_backend.validate("alice", code).ok
        assert center.ingest_queue.snapshot()["completed_total"] == 1

    def test_center_without_ingest_has_no_queue(self, center):
        assert center.ingest_queue is None

    def test_admin_queue_route(self, clock):
        from repro.otpserver.admin_api import AdminAPI, AdminAPIClient

        center = MFACenter(clock=clock, rng=random.Random(4), ingest=True)
        center.add_system("stampede", mode="full")
        api = AdminAPI(center.otp, rng=random.Random(5))
        api.add_admin("portal", "portal-secret")
        client = AdminAPIClient(api, "portal", "portal-secret", rng=random.Random(6))
        center.create_user("alice", password="pw")
        code = center.pair_training("alice")
        center.radius_backend.validate("alice", code)
        body = client.call("GET", "/admin/queue")
        assert body["configured"] is True
        assert body["completed_total"] == 1
        assert set(body["classes"]) >= {"critical", "interactive", "batch"}

    def test_admin_queue_route_unconfigured(self, otp):
        from repro.otpserver.admin_api import AdminAPI, AdminAPIClient

        api = AdminAPI(otp, rng=random.Random(7))
        api.add_admin("portal", "portal-secret")
        client = AdminAPIClient(api, "portal", "portal-secret", rng=random.Random(8))
        assert client.call("GET", "/admin/queue") == {"configured": False}

"""Per-class admission buckets: refill pressure in one class can never
starve another's admission.

The historical shared-bucket mode (an *injected* limiter) let a batch
backfill drain the one pool every class admitted from — ``critical``
survived only because non-sheddable classes ignore an empty bucket.  The
config-driven mode now builds one bucket per class, so these tests pin
the stronger contract: batch overload leaves the critical bucket full.
"""

import pytest

from repro.common.clock import SimulatedClock
from repro.ingest import IngestConfig, IngestQueue, PriorityClass
from repro.otpserver.results import ValidateResult, ValidateStatus
from repro.policy import RateLimitConfig, TokenBucketLimiter


def ok_runner(user, code, source=None):
    return ValidateResult(ValidateStatus.OK)


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


def make_queue(clock, rate=1.0, burst=2.0):
    return IngestQueue(
        ok_runner,
        IngestConfig(admission_rate=rate, admission_burst=burst),
        clock=clock,
    )


class TestPerClassBuckets:
    def test_batch_overload_leaves_critical_bucket_full(self, clock):
        queue = make_queue(clock)
        # Exhaust batch's own bucket and keep hammering: every refused
        # batch item would have drained a shared bucket to zero.
        queue.submit_many([("b", "1")] * 2, priority=PriorityClass.BATCH)
        for _ in range(10):
            refused = queue.submit_item(("b", "1"), PriorityClass.BATCH).result()
            assert not refused.ok and "admission throttled" in refused.reason
        snap = queue.snapshot()
        tokens = snap["admission"]["tokens_available"]
        assert tokens["batch"] == 0.0
        assert tokens["critical"] == 2.0  # untouched by batch pressure

    def test_critical_never_starved_by_batch_refill_pressure(self, clock):
        """The regression: batch arrivals outpace refill forever, yet
        critical admission keeps draining *its own* tokens (its bucket
        refills independently), not riding the non-sheddable exemption."""
        queue = make_queue(clock, rate=1.0, burst=1.0)
        for _ in range(50):
            queue.submit_item(("b", "1"), PriorityClass.BATCH)
            admitted = queue.submit_item(("c", "1"), PriorityClass.CRITICAL)
            assert admitted.result().ok
            clock.advance(1.0)  # refills both buckets by one token
        snap = queue.snapshot()
        # Critical admission came from its own bucket: with one token per
        # second and one critical arrival per second, the bucket cycles
        # without ever being bled dry by the concurrent batch stream.
        assert snap["classes"]["critical"]["shed"] == 0
        assert snap["classes"]["critical"]["completed"] == 50

    def test_interactive_and_sms_isolated_from_admin_sweeps(self, clock):
        queue = make_queue(clock, rate=0.5, burst=1.0)
        for _ in range(5):
            queue.submit_item(("a", "1"), PriorityClass.ADMIN)
        assert queue.submit_item(("i", "1"), PriorityClass.INTERACTIVE).result().ok
        assert queue.submit(("s", None)) is not None  # SMS classify path
        tokens = queue.snapshot()["admission"]["tokens_available"]
        assert tokens["admin"] == 0.0
        assert tokens["interactive"] == 0.0  # drained by its own arrival only
        assert tokens["batch"] == 1.0

    def test_snapshot_marks_mode(self, clock):
        per_class = make_queue(clock).snapshot()["admission"]
        assert per_class["per_class"] is True
        assert per_class["rate"] == 1.0 and per_class["burst"] == 2.0
        shared = IngestQueue(
            ok_runner,
            clock=clock,
            limiter=TokenBucketLimiter(
                RateLimitConfig(rate=1.0, burst=2.0), clock=clock
            ),
        ).snapshot()["admission"]
        assert shared["per_class"] is False
        assert isinstance(shared["tokens_available"], float)


class TestSharedBucketCompatibility:
    def test_injected_limiter_keeps_shared_semantics(self, clock):
        """An injected limiter is still one pool: batch drains it and
        critical rides the non-sheddable exemption on empty."""
        limiter = TokenBucketLimiter(
            RateLimitConfig(rate=1.0, burst=2.0), clock=clock
        )
        queue = IngestQueue(ok_runner, clock=clock, limiter=limiter)
        queue.submit_many([("b", "1")] * 2, priority=PriorityClass.BATCH)
        refused = queue.submit_item(("b", "1"), PriorityClass.BATCH).result()
        assert not refused.ok
        # Critical still enters — but on the exemption, not on tokens.
        assert queue.submit_item(("c", "1"), PriorityClass.CRITICAL).result().ok
        assert queue.snapshot()["admission"]["tokens_available"] == 0.0

    def test_admission_scope_shared_builds_one_pool_from_config(self, clock):
        """Configs that mean admission_rate as an *aggregate* cap opt out
        of the per-class 5x capacity via admission_scope='shared' without
        having to construct and inject a limiter themselves."""
        queue = IngestQueue(
            ok_runner,
            IngestConfig(
                admission_rate=1.0, admission_burst=2.0, admission_scope="shared"
            ),
            clock=clock,
        )
        queue.submit_many([("b", "1")] * 2, priority=PriorityClass.BATCH)
        refused = queue.submit_item(("b", "1"), PriorityClass.BATCH).result()
        assert not refused.ok and "admission throttled" in refused.reason
        snap = queue.snapshot()["admission"]
        assert snap["per_class"] is False
        assert snap["tokens_available"] == 0.0
        # One pool: batch drained it, so admin (also sheddable) is refused.
        assert not queue.submit_item(("a", "1"), PriorityClass.ADMIN).result().ok

    def test_invalid_admission_scope_rejected(self):
        with pytest.raises(ValueError, match="admission_scope"):
            IngestConfig(admission_rate=1.0, admission_scope="global")

"""Property suite for the admission heap (hypothesis-driven).

The three contracts the rest of the system leans on:

* FIFO within a class — two items of the same class serve in submission
  order, always;
* shedding honours the class ranking — ``batch`` dies first, ``critical``
  last, newest-first inside the victim class;
* promotion is capped — an aged ``batch`` head can overtake ``admin``
  but never ``interactive``, which is what keeps interactive p99 flat
  during a backfill.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.ingest import (
    CLASS_RANK,
    ClassPolicy,
    PriorityClass,
    PriorityHeap,
    SHED_ORDER,
    WorkItem,
)
from repro.otpserver.results import Ticket

classes = st.sampled_from(list(PriorityClass))
submissions = st.lists(classes, min_size=1, max_size=60)


def make_item(seq, cls, t=0.0, ready_at=None):
    return WorkItem(
        seq=seq,
        priority=cls,
        request=("user", "code"),
        ticket=Ticket(),
        enqueued_at=t,
        ready_at=t if ready_at is None else ready_at,
    )


def fill(seq_classes, t=0.0):
    heap = PriorityHeap()
    for i, cls in enumerate(seq_classes):
        heap.push(make_item(i, cls, t=t))
    return heap


def drain_pops(heap, now):
    order = []
    while True:
        item = heap.pop(now)
        if item is None:
            return order
        order.append(item)


class TestPopOrder:
    @given(submissions)
    def test_fifo_within_class(self, seq_classes):
        order = drain_pops(fill(seq_classes), now=0.0)
        for cls in PriorityClass:
            seqs = [item.seq for item in order if item.priority is cls]
            assert seqs == sorted(seqs)

    @given(submissions)
    def test_unaged_pops_sort_by_rank_then_seq(self, seq_classes):
        # At age zero nothing has promoted, so the service order is the
        # plain static priority order with seq as the tiebreak.
        order = drain_pops(fill(seq_classes), now=0.0)
        keys = [(CLASS_RANK[item.priority], item.seq) for item in order]
        assert keys == sorted(keys)

    @given(submissions)
    def test_drains_completely_exactly_once(self, seq_classes):
        order = drain_pops(fill(seq_classes), now=0.0)
        assert sorted(item.seq for item in order) == list(range(len(seq_classes)))


class TestPromotion:
    @given(st.floats(min_value=0.0, max_value=100_000.0))
    def test_batch_never_overtakes_interactive(self, age):
        # Whatever the batch head's age, a *fresh* interactive arrival is
        # served first: max_promotion=2 floors batch at rank 2 > rank 1.
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0))
        heap.push(make_item(1, PriorityClass.INTERACTIVE, t=age))
        first = heap.pop(age)
        assert first.priority is PriorityClass.INTERACTIVE

    @given(st.floats(min_value=120.0, max_value=100_000.0))
    def test_aged_batch_overtakes_fresh_admin(self, age):
        # Two promote_after windows (2 x 60 s) lift batch to rank 2,
        # beating admin's static rank 3 — the anti-starvation half.
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0))
        heap.push(make_item(1, PriorityClass.ADMIN, t=age))
        first = heap.pop(age)
        assert first.priority is PriorityClass.BATCH

    @settings(deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_no_starvation_under_continuous_admin_load(self, admin_arrivals):
        # One batch item at t=0 against an endless admin stream arriving
        # every second: the batch item must serve within a bounded wait
        # (two promotion windows + one service slot), never "eventually".
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0))
        seq = 1
        t = 0.0
        served_at = None
        for _ in range(admin_arrivals + 130):
            heap.push(make_item(seq, PriorityClass.ADMIN, t=t))
            seq += 1
            item = heap.pop(t)  # one service slot per simulated second
            if item is not None and item.priority is PriorityClass.BATCH:
                served_at = t
                break
            t += 1.0
        assert served_at is not None
        assert served_at <= 121.0

    def test_never_promotes_with_infinite_window(self):
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.INTERACTIVE, t=0.0))
        heap.push(make_item(1, PriorityClass.CRITICAL, t=1e9))
        assert heap.pop(1e9).priority is PriorityClass.CRITICAL

    def test_custom_policy_overrides_default(self):
        heap = PriorityHeap(
            {
                PriorityClass.BATCH: ClassPolicy(
                    sla_seconds=1.0, promote_after=1.0, max_promotion=4
                )
            }
        )
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0))
        heap.push(make_item(1, PriorityClass.INTERACTIVE, t=10.0))
        # Four windows of promotion take batch to rank 0 — now it may
        # legitimately beat interactive (the cap is policy, not law).
        assert heap.pop(10.0).priority is PriorityClass.BATCH


class TestShedding:
    @given(submissions)
    def test_shed_order_honours_class_ranking(self, seq_classes):
        heap = fill(seq_classes)
        shed_ranks = []
        while len(heap):
            shed_ranks.append(CLASS_RANK[heap.shed().priority])
        # Worst rank always sheds first: the sequence never improves.
        assert shed_ranks == sorted(shed_ranks, reverse=True)
        assert heap.shed() is None

    @given(submissions)
    def test_shed_takes_newest_within_class(self, seq_classes):
        heap = fill(seq_classes)
        last_seq_by_class = {}
        for i, cls in enumerate(seq_classes):
            last_seq_by_class[cls] = i
        victim = heap.shed()
        assert victim.seq == last_seq_by_class[victim.priority]

    def test_shed_candidate_matches_shed(self):
        heap = fill([PriorityClass.CRITICAL, PriorityClass.SMS])
        assert heap.shed_candidate() is PriorityClass.SMS
        assert heap.shed().priority is PriorityClass.SMS
        assert heap.shed_candidate() is PriorityClass.CRITICAL

    def test_shed_order_constant_is_reverse_rank(self):
        assert [CLASS_RANK[c] for c in SHED_ORDER] == [4, 3, 2, 1, 0]


class TestDelayedRetries:
    def test_not_ready_not_popped(self):
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.INTERACTIVE, t=0.0, ready_at=5.0))
        assert heap.pop(4.9) is None
        assert heap.next_ready() == 5.0
        assert heap.pop(5.0).seq == 0

    def test_retries_mature_in_ready_order(self):
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0, ready_at=8.0))
        heap.push(make_item(1, PriorityClass.BATCH, t=0.0, ready_at=3.0))
        assert heap.pop(10.0).seq == 1
        assert heap.pop(10.0).seq == 0

    def test_depth_counts_delayed(self):
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0, ready_at=9.0))
        heap.push(make_item(1, PriorityClass.BATCH, t=0.0))
        assert heap.depth(PriorityClass.BATCH) == 2
        assert len(heap) == 2

    def test_drain_returns_everything(self):
        heap = PriorityHeap()
        heap.push(make_item(0, PriorityClass.BATCH, t=0.0, ready_at=9.0))
        heap.push(make_item(1, PriorityClass.CRITICAL, t=0.0))
        items = heap.drain()
        assert sorted(item.seq for item in items) == [0, 1]
        assert len(heap) == 0
        assert heap.pop(100.0) is None

    @given(submissions, st.integers(min_value=0, max_value=59))
    def test_shed_prefers_delayed_retries(self, seq_classes, delayed_index):
        # A pending retry is the newest commitment in its lane; shedding
        # must cancel it before any FIFO (already-earned) item.
        heap = fill(seq_classes)
        cls = seq_classes[delayed_index % len(seq_classes)]
        retry = make_item(len(seq_classes), cls, t=0.0, ready_at=50.0)
        heap.push(retry)
        victim_cls = heap.shed_candidate()
        victim = heap.shed()
        if victim_cls is cls:
            assert victim is retry


class TestValidation:
    def test_policy_rejects_nonpositive_sla(self):
        import pytest

        with pytest.raises(ValueError):
            ClassPolicy(sla_seconds=0.0)
        with pytest.raises(ValueError):
            ClassPolicy(promote_after=0.0)
        with pytest.raises(ValueError):
            ClassPolicy(max_promotion=-1)

    def test_infinite_promote_window_is_valid(self):
        policy = ClassPolicy(promote_after=math.inf)
        assert not math.isfinite(policy.promote_after)

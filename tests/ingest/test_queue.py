"""IngestQueue: admission, shedding, retries, and the three drive modes."""

import threading

import pytest

from repro.common.clock import SimulatedClock, WallClock
from repro.common.errors import TransientBackendError
from repro.ingest import (
    IngestConfig,
    IngestQueue,
    PriorityClass,
    QueuedBackend,
    classify_request,
)
from repro.otpserver.results import ValidateResult, ValidateStatus
from repro.policy import RateLimitConfig, TokenBucketLimiter
from repro.simcore import EventScheduler


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


def ok_runner(user, code):
    return ValidateResult(ValidateStatus.OK, reason=f"{user}:{code}")


class TestClassification:
    def test_null_code_is_sms(self):
        assert classify_request(("alice", None)) is PriorityClass.SMS
        assert classify_request(("alice", "")) is PriorityClass.SMS

    def test_code_is_interactive(self):
        assert classify_request(("alice", "424242")) is PriorityClass.INTERACTIVE

    def test_explicit_priority_wins(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        queue.submit_item(("alice", "424242"), PriorityClass.BATCH)
        assert queue.snapshot()["classes"]["batch"]["submitted"] == 1


class TestInlineDrive:
    def test_single_submit_resolves_inline(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        result = queue.submit(("alice", "424242")).result()
        assert result.ok
        assert result.reason == "alice:424242"
        assert queue.depth() == 0

    def test_submit_many_preserves_order(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        tickets = queue.submit_many([(f"u{i}", "1") for i in range(10)])
        reasons = [t.result().reason for t in tickets]
        assert reasons == [f"u{i}:1" for i in range(10)]

    def test_higher_class_served_first(self, clock):
        served = []

        def recorder(user, code):
            served.append(user)
            return ValidateResult(ValidateStatus.OK)

        queue = IngestQueue(recorder, clock=clock)
        queue.submit_item(("batch1", "1"), PriorityClass.BATCH)
        queue.submit_item(("crit1", "1"), PriorityClass.CRITICAL)
        queue.submit_item(("inter1", "1"), PriorityClass.INTERACTIVE)
        queue.pump()
        assert served == ["crit1", "inter1", "batch1"]

    def test_validate_many_deprecated_but_working(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        with pytest.deprecated_call():
            results = queue.validate_many([("a", "1"), ("b", "2")])
        assert [r.ok for r in results] == [True, True]


class TestThreadDrive:
    def test_workers_drain_submissions(self):
        queue = IngestQueue(ok_runner, clock=WallClock())
        queue.start(workers=3)
        try:
            tickets = queue.submit_many([(f"u{i}", "1") for i in range(50)])
            results = [t.result(timeout=5.0) for t in tickets]
        finally:
            queue.stop()
        assert all(r.ok for r in results)
        assert queue.snapshot()["completed_total"] == 50

    def test_start_idempotent_stop_joins(self):
        queue = IngestQueue(ok_runner, clock=WallClock())
        queue.start(workers=1)
        queue.start(workers=1)
        queue.stop()
        assert not any(t.is_alive() for t in queue._workers)

    def test_worker_survives_runner_crash(self):
        calls = []

        def flaky(user, code):
            calls.append(user)
            if user == "boom":
                raise RuntimeError("backend fell over")
            return ValidateResult(ValidateStatus.OK)

        queue = IngestQueue(flaky, clock=WallClock())
        queue.start(workers=1)
        try:
            bad = queue.submit(("boom", "1")).result(timeout=5.0)
            good = queue.submit(("fine", "1")).result(timeout=5.0)
        finally:
            queue.stop()
        assert not bad.ok and "backend error" in bad.reason
        assert good.ok
        assert queue.snapshot()["error_total"] == 1


class TestSchedulerDrive:
    def test_attached_pump_drains_at_configured_rate(self, clock):
        scheduler = EventScheduler(clock=clock)
        queue = IngestQueue(ok_runner, clock=clock)
        start = clock.now()
        tickets = queue.submit_many(
            [("u", "1")] * 100, priority=PriorityClass.BATCH
        )
        handle = queue.attach(scheduler, interval=1.0, items_per_pump=10)
        scheduler.run_until(start + 10.0)
        handle.cancel()
        assert all(t.done() for t in tickets)
        assert queue.depth() == 0
        # 10 items/pump x 1 s interval: the drain took exactly 10 pumps.
        assert clock.now() == start + 10.0

    def test_attach_validates_rate(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        with pytest.raises(ValueError):
            queue.attach(EventScheduler(clock=clock), interval=0.0)


class TestRetries:
    def test_transient_failure_backs_off_then_succeeds(self, clock):
        attempts = []

        def flaky(user, code):
            attempts.append(clock.now())
            if len(attempts) < 3:
                raise TransientBackendError("shard momentarily gone")
            return ValidateResult(ValidateStatus.OK)

        queue = IngestQueue(
            flaky,
            IngestConfig(retry_base_delay=0.5, retry_max_delay=30.0),
            clock=clock,
        )
        start = clock.now()
        result = queue.submit(("alice", "1")).result()
        assert result.ok
        # Backoff doubles: attempt at t=0, retry +0.5 s, retry +1.0 s.
        assert [round(t - start, 3) for t in attempts] == [0.0, 0.5, 1.5]
        assert queue.snapshot()["retry_total"] == 2

    def test_retries_exhaust_to_reject(self, clock):
        def always_down(user, code):
            raise TransientBackendError("still gone")

        queue = IngestQueue(always_down, clock=clock)
        result = queue.submit(("alice", "1")).result()
        assert not result.ok
        assert "backend unavailable after 4 attempts" in result.reason

    def test_sla_measures_from_first_admission(self, clock):
        calls = []

        def flaky(user, code):
            calls.append(user)
            if len(calls) == 1:
                raise TransientBackendError("blip")
            return ValidateResult(ValidateStatus.OK)

        queue = IngestQueue(
            flaky, IngestConfig(retry_base_delay=2.0, retry_max_delay=2.0),
            clock=clock,
        )
        assert queue.submit(("alice", "1")).result().ok
        lane = queue.snapshot()["classes"]["interactive"]
        # The retry waited 2 s against a 1 s SLA: hit on first service,
        # miss on the retry service — both measured from admission.
        assert lane["sla_hit_rate"] == 0.5
        assert lane["max_wait_seconds"] == 2.0


class TestBackpressure:
    def test_arrival_outranking_worst_evicts_it(self, clock):
        queue = IngestQueue(ok_runner, IngestConfig(max_depth=2), clock=clock)
        victims = queue.submit_many([("b", "1")] * 2, priority=PriorityClass.BATCH)
        keeper = queue.submit_item(("crit", "1"), PriorityClass.CRITICAL)
        shed = victims[1].result()  # newest batch item died at admission
        assert not shed.ok and shed.reason.startswith("shed: evicted for critical")
        assert keeper.result().ok
        assert victims[0].result().ok

    def test_arrival_not_outranking_is_rejected(self, clock):
        queue = IngestQueue(ok_runner, IngestConfig(max_depth=2), clock=clock)
        queue.submit_many([("c", "1")] * 2, priority=PriorityClass.CRITICAL)
        refused = queue.submit_item(("b", "1"), PriorityClass.BATCH).result()
        assert not refused.ok and "queue full" in refused.reason
        snap = queue.snapshot()
        assert snap["classes"]["batch"]["rejected"] == 1
        assert snap["classes"]["batch"]["shed"] == 1

    def test_equal_rank_never_evicts(self, clock):
        queue = IngestQueue(ok_runner, IngestConfig(max_depth=1), clock=clock)
        first = queue.submit_item(("a", "1"), PriorityClass.INTERACTIVE)
        second = queue.submit_item(("b", "1"), PriorityClass.INTERACTIVE)
        refused = second.result()
        assert not refused.ok and "queue full" in refused.reason
        assert first.result().ok


class TestThrottleShed:
    def make_queue(self, clock, runner=ok_runner):
        limiter = TokenBucketLimiter(
            RateLimitConfig(rate=1.0, burst=2.0), clock=clock
        )
        return IngestQueue(runner, clock=clock, limiter=limiter)

    def test_overload_sheds_batch_before_critical(self, clock):
        queue = self.make_queue(clock)
        # Drain the burst with batch work, then overload: batch refused,
        # critical still admitted on the same empty bucket.
        queue.submit_many([("b", "1")] * 2, priority=PriorityClass.BATCH)
        refused = queue.submit_item(("b3", "1"), PriorityClass.BATCH).result()
        assert not refused.ok and "admission throttled" in refused.reason
        admitted = queue.submit_item(("c", "1"), PriorityClass.CRITICAL)
        assert admitted.result().ok
        snap = queue.snapshot()
        assert snap["classes"]["batch"]["shed"] == 1
        assert snap["classes"]["critical"]["shed"] == 0

    def test_refill_readmits_batch(self, clock):
        queue = self.make_queue(clock)
        queue.submit_many([("b", "1")] * 2, priority=PriorityClass.BATCH)
        assert not queue.submit_item(("b", "1"), PriorityClass.BATCH).result().ok
        clock.advance(2.0)  # rate=1/s -> 2 tokens back
        assert queue.submit_item(("b", "1"), PriorityClass.BATCH).result().ok

    def test_private_limiter_from_config(self, clock):
        queue = IngestQueue(
            ok_runner,
            IngestConfig(admission_rate=1.0, admission_burst=1.0),
            clock=clock,
        )
        snap = queue.snapshot()
        assert snap["admission"]["rate"] == 1.0
        queue.submit_item(("b", "1"), PriorityClass.BATCH)
        refused = queue.submit_item(("b", "1"), PriorityClass.BATCH).result()
        assert "admission throttled" in refused.reason


class TestClose:
    def test_close_sheds_queued_and_refuses_new(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        queued = queue.submit_many([("u", "1")] * 3, priority=PriorityClass.BATCH)
        queue.close()
        for ticket in queued:
            result = ticket.result()
            assert not result.ok and result.reason == "shed: queue closed"
        late = queue.submit(("u", "1")).result()
        assert not late.ok and "queue closed" in late.reason
        assert queue.depth() == 0


class TestSnapshot:
    def test_shape_matches_admin_conventions(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        queue.submit(("alice", "424242")).result()
        snap = queue.snapshot()
        assert snap["configured"] is True
        assert set(snap["classes"]) == {c.value for c in PriorityClass}
        lane = snap["classes"]["interactive"]
        assert lane["submitted"] == lane["completed"] == 1
        assert lane["sla_hit_rate"] == 1.0
        assert snap["shed_classes"] == ["batch", "admin"]
        import json

        json.dumps(snap)  # must stay plain JSON-serializable

    def test_oldest_age_tracks_clock(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        queue.submit_item(("u", "1"), PriorityClass.BATCH)
        clock.advance(7.0)
        lane = queue.snapshot()["classes"]["batch"]
        assert lane["depth"] == 1
        assert lane["oldest_age_seconds"] == 7.0


class TestQueuedBackend:
    def test_validate_routes_through_queue(self, clock):
        class Inner:
            def validate(self, user, code):
                return ValidateResult(ValidateStatus.OK, reason="inner")

            def unpair(self, user):
                return "passthrough"

        inner = Inner()
        queue = IngestQueue(inner.validate, clock=clock)
        backend = QueuedBackend(inner, queue)
        assert backend.validate("alice", "1").reason == "inner"
        assert queue.snapshot()["completed_total"] == 1
        # Administrative surface passes through untouched.
        assert backend.unpair("alice") == "passthrough"


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            IngestConfig(max_depth=0)
        with pytest.raises(ValueError):
            IngestConfig(admission_rate=0.0)
        with pytest.raises(ValueError):
            IngestConfig(retry_base_delay=2.0, retry_max_delay=1.0)
        with pytest.raises(ValueError):
            IngestConfig(service_cost_seconds=-1.0)

    def test_worker_count_validated(self, clock):
        queue = IngestQueue(ok_runner, clock=clock)
        with pytest.raises(ValueError):
            queue.start(workers=0)


class TestConcurrentSubmitters:
    def test_many_threads_submit_one_queue_drains(self):
        queue = IngestQueue(ok_runner, clock=WallClock())
        queue.start(workers=2)
        results = []
        lock = threading.Lock()

        def submitter(n):
            tickets = queue.submit_many([(f"t{n}-{i}", "1") for i in range(20)])
            resolved = [t.result(timeout=5.0) for t in tickets]
            with lock:
                results.extend(resolved)

        threads = [threading.Thread(target=submitter, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        queue.stop()
        assert len(results) == 80
        assert all(r.ok for r in results)

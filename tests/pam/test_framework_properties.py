"""Property-based check of PAM stack semantics against a reference model.

The reference interpreter below is written independently of
:mod:`repro.pam.framework` (straight from the libpam documentation); the
property is that for any randomly generated stack of modules with keyword
controls, both agree on the final verdict.
"""

from hypothesis import given, strategies as st

from repro.pam.framework import PAMResult, PAMSession, PAMStack


class FixedModule:
    def __init__(self, result):
        self.result = result
        self.name = f"fixed_{result.value}"

    def authenticate(self, session):
        return self.result


def reference_verdict(entries):
    """Independent interpreter: list of (control_keyword, result)."""
    failure = None
    success = False
    for control, result in entries:
        ok = result is PAMResult.SUCCESS
        if control == "required":
            if ok:
                success = True
            elif failure is None:
                failure = result
        elif control == "requisite":
            if ok:
                success = True
            else:
                return failure if failure is not None else result
        elif control == "sufficient":
            if ok and failure is None:
                return PAMResult.SUCCESS
            if ok and failure is not None:
                return failure
            # failure under sufficient is ignored
        elif control == "optional":
            if ok:
                success = True
    if failure is not None:
        return failure
    if success:
        return PAMResult.SUCCESS
    return PAMResult.AUTH_ERR


controls = st.sampled_from(["required", "requisite", "sufficient", "optional"])
results = st.sampled_from([PAMResult.SUCCESS, PAMResult.AUTH_ERR, PAMResult.PERM_DENIED])
entries_strategy = st.lists(st.tuples(controls, results), min_size=1, max_size=8)


class TestAgainstReference:
    @given(entries=entries_strategy)
    def test_verdict_matches_reference(self, entries):
        stack = PAMStack("sshd")
        for control, result in entries:
            stack.append(control, FixedModule(result))
        session = PAMSession(username="u", remote_ip="1.2.3.4")
        assert stack.authenticate(session) == reference_verdict(entries)

    @given(entries=entries_strategy)
    def test_requisite_failure_stops_execution(self, entries):
        """No module after a failing requisite may run."""
        stack = PAMStack("sshd")
        modules = []
        for control, result in entries:
            module = FixedModule(result)
            module.calls = 0
            original = module.authenticate

            def counted(session, m=module, orig=original):
                m.calls += 1
                return orig(session)

            module.authenticate = counted
            modules.append((control, module))
            stack.append(control, module)
        stack.authenticate(PAMSession(username="u", remote_ip="1.2.3.4"))
        stopped = False
        for control, module in modules:
            if stopped:
                assert module.calls == 0
            elif (
                control == "requisite" and module.result is not PAMResult.SUCCESS
            ):
                stopped = True
            elif (
                control == "sufficient"
                and module.result is PAMResult.SUCCESS
            ):
                stopped = True

    @given(entries=entries_strategy, data=st.data())
    def test_prefix_determinism(self, entries, data):
        """Running the same stack twice gives the same verdict (no hidden
        state in the engine)."""
        stack = PAMStack("sshd")
        for control, result in entries:
            stack.append(control, FixedModule(result))
        first = stack.authenticate(PAMSession(username="u", remote_ip="1.2.3.4"))
        second = stack.authenticate(PAMSession(username="u", remote_ip="1.2.3.4"))
        assert first == second

"""PAM stack engine: control-flag semantics, jumps, config parsing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.pam.framework import (
    PAMResult,
    PAMSession,
    PAMStack,
    parse_control,
    parse_pam_config,
)


class FixedModule:
    """A module that always returns a fixed result."""

    def __init__(self, result, name="fixed"):
        self.result = result
        self.name = name
        self.calls = 0

    def authenticate(self, session):
        self.calls += 1
        return self.result


def session():
    return PAMSession(username="alice", remote_ip="1.2.3.4")


class TestParseControl:
    def test_keywords(self):
        assert parse_control("required")["success"] == "ok"
        assert parse_control("requisite")["default"] == "die"
        assert parse_control("sufficient")["success"] == "done"
        assert parse_control("optional")["default"] == "ignore"

    def test_bracket_form(self):
        actions = parse_control("[success=2 default=ignore]")
        assert actions["success"] == "2"
        assert actions["default"] == "ignore"

    def test_bracket_default_bad(self):
        assert parse_control("[success=ok]")["default"] == "bad"

    def test_unknown_keyword(self):
        with pytest.raises(ConfigurationError):
            parse_control("mandatory")

    def test_malformed_bracket(self):
        with pytest.raises(ConfigurationError):
            parse_control("[success=ok")
        with pytest.raises(ConfigurationError):
            parse_control("[success]")
        with pytest.raises(ConfigurationError):
            parse_control("[success=frobnicate]")


class TestStackSemantics:
    def test_empty_stack_is_config_error(self):
        with pytest.raises(ConfigurationError):
            PAMStack("sshd").authenticate(session())

    def test_single_required_success(self):
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS

    def test_single_required_failure(self):
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.AUTH_ERR))
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR

    def test_required_failure_continues_execution(self):
        """required failures keep running later modules (timing-oracle
        hardening) but the final verdict is failure."""
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.AUTH_ERR))
        later = FixedModule(PAMResult.SUCCESS)
        stack.append("required", later)
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR
        assert later.calls == 1

    def test_requisite_failure_stops_immediately(self):
        stack = PAMStack("sshd")
        stack.append("requisite", FixedModule(PAMResult.AUTH_ERR))
        later = FixedModule(PAMResult.SUCCESS)
        stack.append("required", later)
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR
        assert later.calls == 0

    def test_sufficient_success_short_circuits(self):
        stack = PAMStack("sshd")
        stack.append("sufficient", FixedModule(PAMResult.SUCCESS))
        later = FixedModule(PAMResult.AUTH_ERR)
        stack.append("required", later)
        assert stack.authenticate(session()) is PAMResult.SUCCESS
        assert later.calls == 0

    def test_sufficient_failure_ignored(self):
        stack = PAMStack("sshd")
        stack.append("sufficient", FixedModule(PAMResult.AUTH_ERR))
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS

    def test_sufficient_after_required_failure_does_not_rescue(self):
        """libpam: 'done' only returns success if nothing failed before."""
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.AUTH_ERR))
        stack.append("sufficient", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR

    def test_optional_alone_does_not_grant(self):
        stack = PAMStack("sshd")
        stack.append("optional", FixedModule(PAMResult.AUTH_ERR))
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR

    def test_optional_success_contributes(self):
        stack = PAMStack("sshd")
        stack.append("optional", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS

    def test_jump_skips_modules(self):
        stack = PAMStack("sshd")
        stack.append("[success=1 default=ignore]", FixedModule(PAMResult.SUCCESS))
        skipped = FixedModule(PAMResult.AUTH_ERR, name="skipped")
        stack.append("requisite", skipped)
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS
        assert skipped.calls == 0

    def test_jump_not_taken_on_failure(self):
        stack = PAMStack("sshd")
        stack.append("[success=1 default=ignore]", FixedModule(PAMResult.AUTH_ERR))
        not_skipped = FixedModule(PAMResult.SUCCESS, name="pw")
        stack.append("requisite", not_skipped)
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS
        assert not_skipped.calls == 1

    def test_jump_two(self):
        stack = PAMStack("sshd")
        stack.append("[success=2 default=ignore]", FixedModule(PAMResult.SUCCESS))
        a = FixedModule(PAMResult.AUTH_ERR)
        b = FixedModule(PAMResult.AUTH_ERR)
        stack.append("requisite", a)
        stack.append("requisite", b)
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS
        assert a.calls == 0 and b.calls == 0

    def test_no_verdict_fails_closed(self):
        stack = PAMStack("sshd")
        stack.append("[default=ignore success=ignore]", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR

    def test_session_log_records_modules(self):
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.SUCCESS, name="mod_a"))
        s = session()
        stack.authenticate(s)
        assert s.log == ["mod_a: success"]


class TestConfigParsing:
    REGISTRY = {
        "pam_pass.so": lambda opts: FixedModule(PAMResult.SUCCESS, "pam_pass.so"),
        "pam_fail.so": lambda opts: FixedModule(PAMResult.AUTH_ERR, "pam_fail.so"),
    }

    def test_basic_config(self):
        stack = parse_pam_config(
            "sshd",
            """
            # comment line
            auth required pam_pass.so
            auth sufficient pam_pass.so
            """,
            self.REGISTRY,
        )
        assert len(stack.entries) == 2
        assert stack.authenticate(session()) is PAMResult.SUCCESS

    def test_bracket_control_with_spaces(self):
        stack = parse_pam_config(
            "sshd",
            "auth [success=1 default=ignore] pam_pass.so\n"
            "auth requisite pam_fail.so\n"
            "auth required pam_pass.so\n",
            self.REGISTRY,
        )
        assert stack.authenticate(session()) is PAMResult.SUCCESS

    def test_options_parsed(self):
        captured = {}

        def factory(opts):
            captured.update(opts)
            return FixedModule(PAMResult.SUCCESS, "m")

        parse_pam_config(
            "sshd", "auth required m mode=countdown deadline=2016-10-04", {"m": factory}
        )
        assert captured == {"mode": "countdown", "deadline": "2016-10-04"}

    def test_unknown_module(self):
        with pytest.raises(ConfigurationError, match="unknown module"):
            parse_pam_config("sshd", "auth required pam_mystery.so", self.REGISTRY)

    def test_wrong_facility(self):
        with pytest.raises(ConfigurationError, match="facility"):
            parse_pam_config("sshd", "session required pam_pass.so", self.REGISTRY)

    def test_too_few_fields(self):
        with pytest.raises(ConfigurationError):
            parse_pam_config("sshd", "auth required", self.REGISTRY)


class TestResetAction:
    def test_reset_clears_recorded_failure(self):
        """The [default=reset] action wipes prior verdicts (libpam uses it
        for retry-style stacks)."""
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.AUTH_ERR))
        stack.append("[success=reset default=reset]", FixedModule(PAMResult.SUCCESS))
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.SUCCESS

    def test_reset_then_no_verdict_fails_closed(self):
        stack = PAMStack("sshd")
        stack.append("required", FixedModule(PAMResult.SUCCESS))
        stack.append("[success=reset default=reset]", FixedModule(PAMResult.SUCCESS))
        assert stack.authenticate(session()) is PAMResult.AUTH_ERR

"""File-driven PAM service management: registry, hot reload, mode flips."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigurationError, NotFoundError
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.pam.acl import InMemoryExemptionACL
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMResult, PAMSession
from repro.pam.registry import PAMServiceManager, figure1_config, standard_registry
from repro.ssh.authlog import AuthLog


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-09-15T12:00:00")


@pytest.fixture
def rig(clock, tmp_path):
    center = MFACenter(clock=clock, rng=random.Random(1))
    center.add_system("stampede")  # provides the RADIUS farm wiring
    center.create_user("alice", password="pw")
    authlog = AuthLog(clock)
    acl = InMemoryExemptionACL("", clock=clock)
    registry = standard_registry(
        center.identity, authlog, acl,
        radius_factory=lambda: center.new_radius_client("10.3.1.5"),
    )
    manager = PAMServiceManager(str(tmp_path / "pam.d"), registry)

    class Rig:
        pass

    r = Rig()
    r.center, r.manager, r.authlog, r.acl, r.clock = center, manager, authlog, acl, clock
    return r


def session(clock, responses, username="alice"):
    return PAMSession(
        username=username, remote_ip="198.51.100.7",
        conversation=ScriptedConversation(responses), clock=clock,
    )


class TestServiceFiles:
    def test_missing_service_raises(self, rig):
        with pytest.raises(NotFoundError):
            rig.manager.stack("sshd")

    def test_write_and_parse(self, rig):
        rig.manager.write_config("sshd", figure1_config("paired"))
        stack = rig.manager.stack("sshd")
        assert len(stack.entries) == 4

    def test_read_back(self, rig):
        text = figure1_config("countdown", "2016-10-04")
        rig.manager.write_config("sshd", text)
        assert rig.manager.read_config("sshd") == text
        assert "deadline=2016-10-04" in text

    def test_stack_cached_until_file_changes(self, rig):
        rig.manager.write_config("sshd", figure1_config("paired"))
        first = rig.manager.stack("sshd")
        assert rig.manager.stack("sshd") is first
        assert rig.manager.reload_count == 1

    def test_edit_triggers_rebuild(self, rig):
        rig.manager.write_config("sshd", figure1_config("paired"))
        first = rig.manager.stack("sshd")
        rig.manager.write_config("sshd", figure1_config("full"))
        second = rig.manager.stack("sshd")
        assert second is not first
        assert rig.manager.reload_count == 2

    def test_invalid_mode_rejected(self, rig):
        with pytest.raises(ConfigurationError):
            rig.manager.set_enforcement_mode("sshd", "ludicrous")


class TestLivePolicyFlip:
    """"in effect as soon as written to disk" — the whole point."""

    def test_paired_to_full_flip(self, rig):
        rig.manager.set_enforcement_mode("sshd", "paired")
        # Unpaired alice passes under `paired` mode...
        result = rig.manager.authenticate("sshd", session(rig.clock, ["pw"]))
        assert result is PAMResult.SUCCESS
        # ...the admin edits the file...
        rig.manager.set_enforcement_mode("sshd", "full")
        # ...and the very next authentication enforces it.
        result = rig.manager.authenticate("sshd", session(rig.clock, ["pw", "123456"]))
        assert result is PAMResult.AUTH_ERR

    def test_full_mode_with_real_token(self, rig):
        rig.manager.set_enforcement_mode("sshd", "full")
        _, secret = rig.center.pair_soft("alice")
        device = TOTPGenerator(secret=secret, clock=rig.clock)
        result = rig.manager.authenticate(
            "sshd", session(rig.clock, ["pw", device.current_code()])
        )
        assert result is PAMResult.SUCCESS

    def test_countdown_mode_via_file(self, rig):
        rig.manager.set_enforcement_mode("sshd", "countdown", deadline="2016-10-04")
        s = session(rig.clock, ["pw", ""])
        assert rig.manager.authenticate("sshd", s) is PAMResult.SUCCESS
        assert s.items["mfa_countdown_days"] == 19

    def test_off_mode_via_file(self, rig):
        rig.manager.set_enforcement_mode("sshd", "off")
        result = rig.manager.authenticate("sshd", session(rig.clock, ["pw"]))
        assert result is PAMResult.SUCCESS

    def test_pubkey_jump_wired_from_file(self, rig):
        rig.manager.set_enforcement_mode("sshd", "off")
        rig.authlog.append("accepted_publickey", "alice", "198.51.100.7")
        s = session(rig.clock, [])  # no password available!
        assert rig.manager.authenticate("sshd", s) is PAMResult.SUCCESS
        assert s.items["first_factor"] == "publickey"

    def test_exemption_wired_from_file(self, rig):
        rig.manager.set_enforcement_mode("sshd", "full")
        rig.acl.set_text("+ : alice : ALL : ALL\n")
        s = session(rig.clock, ["pw"])
        assert rig.manager.authenticate("sshd", s) is PAMResult.SUCCESS
        assert s.items["mfa_exempt"] is True

    def test_per_service_isolation(self, rig):
        rig.manager.set_enforcement_mode("sshd", "full")
        rig.manager.set_enforcement_mode("login", "off")
        assert (
            rig.manager.authenticate("login", session(rig.clock, ["pw"]))
            is PAMResult.SUCCESS
        )
        assert (
            rig.manager.authenticate("sshd", session(rig.clock, ["pw", "000000"]))
            is PAMResult.AUTH_ERR
        )

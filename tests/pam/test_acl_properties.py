"""Property-based checks of the exemption ACL against stdlib references."""

import ipaddress

from hypothesis import given, strategies as st

from repro.common.clock import SimulatedClock
from repro.pam.acl import InMemoryExemptionACL, OriginMatcher

ipv4 = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda v: str(ipaddress.IPv4Address(v))
)
prefix_len = st.integers(min_value=0, max_value=32)


class TestCIDRAgainstStdlib:
    @given(network_ip=ipv4, prefix=prefix_len, candidate=ipv4)
    def test_matches_ipaddress_module(self, network_ip, prefix, candidate):
        network = ipaddress.ip_network(f"{network_ip}/{prefix}", strict=False)
        matcher = OriginMatcher.parse(f"{network.network_address}/{prefix}")
        expected = ipaddress.ip_address(candidate) in network
        assert matcher.matches(candidate) == expected

    @given(ip=ipv4)
    def test_single_ip_self_match(self, ip):
        matcher = OriginMatcher.parse(ip)
        assert matcher.matches(ip)

    @given(ip=ipv4, other=ipv4)
    def test_single_ip_only_matches_itself(self, ip, other):
        matcher = OriginMatcher.parse(ip)
        assert matcher.matches(other) == (ip == other)


usernames = st.sampled_from(["alice", "bob", "gateway01", "mallory"])
permissions = st.sampled_from(["+", "-"])
accounts_field = st.sampled_from(["ALL", "alice", "bob", "alice,bob", "gateway01"])
origins_field = st.sampled_from(
    ["ALL", "10.0.0.0/8", "129.114.0.0/16", "203.0.113.7", "10.0.0.0/8,203.0.113.7"]
)
rule_strategy = st.tuples(permissions, accounts_field, origins_field)
query_ips = st.sampled_from(["10.1.2.3", "129.114.9.9", "203.0.113.7", "8.8.8.8"])


def reference_check(rules, username, ip):
    """Independent first-match-wins evaluator using ipaddress."""
    for permission, accounts, origins in rules:
        if accounts != "ALL" and username not in accounts.split(","):
            continue
        matched = False
        for origin in origins.split(","):
            if origin == "ALL":
                matched = True
            else:
                network = ipaddress.ip_network(origin, strict=False)
                if ipaddress.ip_address(ip) in network:
                    matched = True
        if matched:
            return permission == "+"
    return False


class TestACLAgainstReference:
    @given(
        rules=st.lists(rule_strategy, max_size=6),
        username=usernames,
        ip=query_ips,
    )
    def test_first_match_semantics(self, rules, username, ip):
        text = "\n".join(f"{p} : {a} : {o} : ALL" for p, a, o in rules)
        acl = InMemoryExemptionACL(text, clock=SimulatedClock(0.0))
        assert acl.check(username, ip) == reference_check(rules, username, ip)

    @given(rules=st.lists(rule_strategy, max_size=6))
    def test_no_rules_means_deny(self, rules):
        acl = InMemoryExemptionACL("", clock=SimulatedClock(0.0))
        assert not acl.check("anyone", "1.2.3.4")

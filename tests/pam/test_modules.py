"""The four in-house PAM modules and the Figure 1/2 decision trees."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import IdentityBackend, PairingStatus
from repro.otpserver.server import OTPServer
from repro.pam.acl import InMemoryExemptionACL
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMResult, PAMSession, PAMStack
from repro.pam.modules.exemption import MFAExemptionModule
from repro.pam.modules.pubkey import PublicKeySuccessModule
from repro.pam.modules.solaris import SolarisMFAModule
from repro.pam.modules.token import EnforcementMode, MFATokenModule
from repro.pam.modules.unix_password import UnixPasswordModule
from repro.radius.client import RADIUSClient
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric
from repro.ssh.authlog import AuthLog


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-09-15T12:00:00")


@pytest.fixture
def rig(clock):
    """Identity + OTP + RADIUS wiring shared by the token-module tests."""

    class Rig:
        pass

    rig = Rig()
    rig.identity = IdentityBackend()
    rig.identity.create_account("alice", "a@x.edu", password="pw")
    rig.identity.create_account("bob", "b@x.edu", password="pw")

    class Backend:
        """Username-keyed OTP backend (tests enroll by username)."""

        def __init__(self, otp):
            self.otp = otp

        def validate(self, username, code):
            return self.otp.validate(username, code)

    rig.otp = OTPServer(clock=clock, rng=random.Random(1))
    rig.fabric = UDPFabric(rng=random.Random(2))
    server = RADIUSServer("10.0.0.1:1812", rig.fabric, Backend(rig.otp))
    server.add_client("10.", b"secret")  # the login-node subnet
    rig.radius = RADIUSClient(
        rig.fabric, ["10.0.0.1:1812"], b"secret", "10.3.1.5", rng=random.Random(3)
    )
    rig.clock = clock
    return rig


def make_session(clock, username="alice", ip="198.51.100.7", responses=None):
    return PAMSession(
        username=username,
        remote_ip=ip,
        conversation=ScriptedConversation(responses or []),
        clock=clock,
    )


class TestPublicKeySuccessModule:
    def test_recent_acceptance_found(self, clock):
        log = AuthLog(clock)
        log.append("accepted_publickey", "alice", "198.51.100.7")
        module = PublicKeySuccessModule(log)
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert session.items["first_factor"] == "publickey"

    def test_no_entry_fails(self, clock):
        module = PublicKeySuccessModule(AuthLog(clock))
        assert module.authenticate(make_session(clock)) is PAMResult.AUTH_ERR

    def test_wrong_ip_fails(self, clock):
        log = AuthLog(clock)
        log.append("accepted_publickey", "alice", "203.0.113.99")
        module = PublicKeySuccessModule(log)
        assert module.authenticate(make_session(clock)) is PAMResult.AUTH_ERR

    def test_wrong_user_fails(self, clock):
        log = AuthLog(clock)
        log.append("accepted_publickey", "bob", "198.51.100.7")
        module = PublicKeySuccessModule(log)
        assert module.authenticate(make_session(clock)) is PAMResult.AUTH_ERR

    def test_stale_entry_fails(self, clock):
        log = AuthLog(clock)
        log.append("accepted_publickey", "alice", "198.51.100.7")
        clock.advance(60)  # past the 30 s window
        module = PublicKeySuccessModule(log)
        assert module.authenticate(make_session(clock)) is PAMResult.AUTH_ERR

    def test_password_events_dont_count(self, clock):
        log = AuthLog(clock)
        log.append("accepted_password", "alice", "198.51.100.7")
        module = PublicKeySuccessModule(log)
        assert module.authenticate(make_session(clock)) is PAMResult.AUTH_ERR


class TestUnixPasswordModule:
    def test_correct_password(self, rig, clock):
        module = UnixPasswordModule(rig.identity)
        session = make_session(clock, responses=["pw"])
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert session.items["first_factor"] == "password"

    def test_wrong_password(self, rig, clock):
        module = UnixPasswordModule(rig.identity)
        assert (
            module.authenticate(make_session(clock, responses=["nope"]))
            is PAMResult.AUTH_ERR
        )

    def test_no_conversation_fails(self, rig, clock):
        module = UnixPasswordModule(rig.identity)
        session = PAMSession(username="alice", remote_ip="1.2.3.4", clock=clock)
        assert module.authenticate(session) is PAMResult.AUTH_ERR


class TestExemptionModule:
    def test_granted(self, clock):
        acl = InMemoryExemptionACL("+ : alice : ALL : ALL", clock=clock)
        module = MFAExemptionModule(acl)
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert session.items["mfa_exempt"] is True

    def test_denied(self, clock):
        acl = InMemoryExemptionACL("", clock=clock)
        module = MFAExemptionModule(acl)
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.AUTH_ERR
        assert "mfa_exempt" not in session.items


class TestTokenModuleModes:
    def make_module(self, rig, mode, deadline=None):
        return MFATokenModule(
            ldap=rig.identity.ldap,
            radius=rig.radius,
            mode=mode,
            deadline=deadline,
        )

    def pair_soft(self, rig, username="alice"):
        _, secret = rig.otp.enroll_soft(username)
        rig.identity.notify_pairing(username, PairingStatus.SOFT)
        return TOTPGenerator(secret=secret, clock=rig.clock)

    def test_off_mode_always_succeeds(self, rig, clock):
        module = self.make_module(rig, "off")
        assert module.authenticate(make_session(clock)) is PAMResult.SUCCESS

    def test_paired_mode_unpaired_passes(self, rig, clock):
        module = self.make_module(rig, "paired")
        assert module.authenticate(make_session(clock)) is PAMResult.SUCCESS

    def test_paired_mode_paired_challenged(self, rig, clock):
        device = self.pair_soft(rig)
        module = self.make_module(rig, "paired")
        session = make_session(clock, responses=[device.current_code()])
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert session.items["second_factor"] == "soft"

    def test_paired_mode_wrong_code_denied(self, rig, clock):
        self.pair_soft(rig)
        module = self.make_module(rig, "paired")
        session = make_session(clock, responses=["000000"])
        assert module.authenticate(session) is PAMResult.AUTH_ERR

    def test_countdown_unpaired_sees_message_and_acks(self, rig, clock):
        module = self.make_module(rig, "countdown", deadline="2016-10-04")
        session = make_session(clock, responses=[""])  # the return-key ack
        assert module.authenticate(session) is PAMResult.SUCCESS
        conversation = session.conversation
        messages = " ".join(conversation.messages())
        assert "mandatory in 19 day(s)" in messages
        assert "https://portal.center.edu/mfa" in messages
        # The acknowledgement prompt was issued.
        assert any(t[0] == "prompt_echo_on" for t in conversation.transcript)
        assert session.items["mfa_countdown_days"] == 19

    def test_countdown_paired_challenged(self, rig, clock):
        device = self.pair_soft(rig)
        module = self.make_module(rig, "countdown", deadline="2016-10-04")
        session = make_session(clock, responses=[device.current_code()])
        assert module.authenticate(session) is PAMResult.SUCCESS

    def test_countdown_past_deadline_becomes_full(self, rig, clock):
        module = self.make_module(rig, "countdown", deadline="2016-09-01")
        # Unpaired user past the deadline: prompted and denied.
        session = make_session(clock, responses=["123456"])
        assert module.authenticate(session) is PAMResult.AUTH_ERR

    def test_full_mode_unpaired_denied(self, rig, clock):
        module = self.make_module(rig, "full")
        session = make_session(clock, responses=["123456"])
        assert module.authenticate(session) is PAMResult.AUTH_ERR

    def test_full_mode_prompts_even_unpaired(self, rig, clock):
        """Full mode prompts regardless, leaking nothing about pairing."""
        module = self.make_module(rig, "full")
        session = make_session(clock, responses=["123456"])
        module.authenticate(session)
        assert any(
            t[0] == "prompt_echo_off" for t in session.conversation.transcript
        )

    def test_full_mode_paired_succeeds(self, rig, clock):
        device = self.pair_soft(rig)
        module = self.make_module(rig, "full")
        session = make_session(clock, responses=[device.current_code()])
        assert module.authenticate(session) is PAMResult.SUCCESS


class TestTokenModuleConfigErrors:
    def test_bad_mode_falls_back_to_full(self, rig):
        module = MFATokenModule(ldap=rig.identity.ldap, radius=rig.radius, mode="banana")
        assert module.effective_mode is EnforcementMode.FULL
        assert module.had_config_error

    def test_bad_deadline_falls_back_to_full(self, rig):
        module = MFATokenModule(
            ldap=rig.identity.ldap, radius=rig.radius,
            mode="countdown", deadline="whenever",
        )
        assert module.effective_mode is EnforcementMode.FULL
        assert module.had_config_error

    def test_countdown_without_deadline_is_config_error(self, rig):
        module = MFATokenModule(
            ldap=rig.identity.ldap, radius=rig.radius, mode="countdown"
        )
        assert module.effective_mode is EnforcementMode.FULL

    def test_valid_config_no_error(self, rig):
        module = MFATokenModule(
            ldap=rig.identity.ldap, radius=rig.radius,
            mode="countdown", deadline="2016-10-04",
        )
        assert module.effective_mode is EnforcementMode.COUNTDOWN
        assert not module.had_config_error


class TestTokenModuleSMS:
    def test_sms_flow_through_module(self, rig, clock):
        rig.otp.enroll_sms("alice", "5125551234")
        rig.identity.notify_pairing("alice", PairingStatus.SMS)
        module = MFATokenModule(ldap=rig.identity.ldap, radius=rig.radius, mode="full")

        class SMSConversation(ScriptedConversation):
            def prompt_echo_off(self, prompt):
                clock.advance(10)  # SMS delivery time
                message = rig.otp.sms.latest("5125551234")
                code = message.body.split()[-1]
                self.transcript.append(("prompt_echo_off", prompt, code))
                return code

        session = PAMSession(
            username="alice", remote_ip="1.2.3.4",
            conversation=SMSConversation(), clock=clock,
        )
        assert module.authenticate(session) is PAMResult.SUCCESS
        messages = " ".join(session.conversation.messages())
        assert "sent" in messages.lower()


class TestSolarisModule:
    def test_pubkey_and_exempt_succeeds(self, clock):
        log = AuthLog(clock)
        log.append("accepted_publickey", "alice", "198.51.100.7")
        acl = InMemoryExemptionACL("+ : alice : ALL : ALL", clock=clock)
        module = SolarisMFAModule(log, acl)
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert session.items["first_factor"] == "publickey"
        assert session.items["mfa_exempt"] is True

    def test_pubkey_only_continues(self, clock):
        log = AuthLog(clock)
        log.append("accepted_publickey", "alice", "198.51.100.7")
        module = SolarisMFAModule(log, InMemoryExemptionACL("", clock=clock))
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.IGNORE
        assert session.items["first_factor"] == "publickey"
        assert "mfa_exempt" not in session.items

    def test_exempt_only_continues(self, clock):
        acl = InMemoryExemptionACL("+ : alice : ALL : ALL", clock=clock)
        module = SolarisMFAModule(AuthLog(clock), acl)
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.IGNORE
        assert session.items["mfa_exempt"] is True

    def test_neither_continues(self, clock):
        module = SolarisMFAModule(AuthLog(clock), InMemoryExemptionACL("", clock=clock))
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.IGNORE
        assert not session.items


class TestFigure1StackPaths:
    """Exhaustive walk of Figure 1's decision tree through a real stack."""

    @pytest.fixture
    def figure1(self, rig, clock):
        log = AuthLog(clock)
        acl = InMemoryExemptionACL("+ : gateway01 : ALL : ALL", clock=clock)
        rig.identity.create_account("gateway01", "g@x.edu", password="gpw")
        stack = PAMStack("sshd")
        stack.append("[success=1 default=ignore]", PublicKeySuccessModule(log))
        stack.append("requisite", UnixPasswordModule(rig.identity))
        stack.append("sufficient", MFAExemptionModule(acl))
        stack.append(
            "requisite",
            MFATokenModule(ldap=rig.identity.ldap, radius=rig.radius, mode="full"),
        )
        rig.log = log
        rig.stack = stack
        return rig

    def pair(self, rig):
        _, secret = rig.otp.enroll_soft("alice")
        rig.identity.notify_pairing("alice", PairingStatus.SOFT)
        return TOTPGenerator(secret=secret, clock=rig.clock)

    def test_pubkey_yes_exempt_no_token_yes(self, figure1, clock):
        device = self.pair(figure1)
        figure1.log.append("accepted_publickey", "alice", "198.51.100.7")
        session = make_session(clock, responses=[device.current_code()])
        assert figure1.stack.authenticate(session) is PAMResult.SUCCESS
        assert session.items["first_factor"] == "publickey"

    def test_pubkey_yes_exempt_no_token_no(self, figure1, clock):
        self.pair(figure1)
        figure1.log.append("accepted_publickey", "alice", "198.51.100.7")
        session = make_session(clock, responses=["000000"])
        assert figure1.stack.authenticate(session) is PAMResult.AUTH_ERR

    def test_pubkey_no_password_yes_token_yes(self, figure1, clock):
        device = self.pair(figure1)
        session = make_session(clock, responses=["pw", device.current_code()])
        assert figure1.stack.authenticate(session) is PAMResult.SUCCESS
        assert session.items["first_factor"] == "password"

    def test_pubkey_no_password_no_denied_before_second_factor(self, figure1, clock):
        """Bad first factor never reaches the token module — this is the
        brute-force filtering Section 3.1 describes."""
        self.pair(figure1)
        before = figure1.otp.validate_requests
        session = make_session(clock, responses=["wrong-password"])
        assert figure1.stack.authenticate(session) is PAMResult.AUTH_ERR
        assert figure1.otp.validate_requests == before  # LinOTP never queried

    def test_exemption_skips_token_entirely(self, figure1, clock):
        session = make_session(
            clock, username="gateway01", responses=["gpw"]
        )
        before = figure1.otp.validate_requests
        assert figure1.stack.authenticate(session) is PAMResult.SUCCESS
        assert session.items["mfa_exempt"] is True
        assert figure1.otp.validate_requests == before

    def test_unpaired_full_mode_denied(self, figure1, clock):
        session = make_session(clock, username="bob", responses=["pw", "123456"])
        assert figure1.stack.authenticate(session) is PAMResult.AUTH_ERR


class TestPassiveNotice:
    """Section 4.2's first messaging wave: a passive notice in paired mode."""

    def test_unpaired_sees_notice_without_ack(self, rig, clock):
        module = MFATokenModule(
            ldap=rig.identity.ldap, radius=rig.radius,
            mode="paired", passive_notice=True,
        )
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.SUCCESS
        messages = " ".join(session.conversation.messages())
        assert "pair a device" in messages
        # Passive: no prompt of any kind was issued.
        assert not any(
            t[0].startswith("prompt") for t in session.conversation.transcript
        )

    def test_default_is_silent(self, rig, clock):
        module = MFATokenModule(
            ldap=rig.identity.ldap, radius=rig.radius, mode="paired"
        )
        session = make_session(clock)
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert session.conversation.messages() == []

    def test_paired_user_not_shown_notice(self, rig, clock):
        _, secret = rig.otp.enroll_soft("alice")
        rig.identity.notify_pairing("alice", PairingStatus.SOFT)
        device = TOTPGenerator(secret=secret, clock=clock)
        module = MFATokenModule(
            ldap=rig.identity.ldap, radius=rig.radius,
            mode="paired", passive_notice=True,
        )
        session = make_session(clock, responses=[device.current_code()])
        assert module.authenticate(session) is PAMResult.SUCCESS
        assert not any(
            "pair a device" in m for m in session.conversation.messages()
        )

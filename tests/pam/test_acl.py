"""Exemption ACL: syntax, matching, expiry, ALL wildcards, hot reload."""

import os
import time

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigurationError
from repro.pam.acl import (
    ExemptionACL,
    InMemoryExemptionACL,
    OriginMatcher,
    parse_rules,
)


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-09-15T12:00:00")


def acl(text, clock):
    return InMemoryExemptionACL(text, clock=clock)


class TestOriginMatcher:
    def test_single_ip(self):
        m = OriginMatcher.parse("129.114.0.5")
        assert m.matches("129.114.0.5")
        assert not m.matches("129.114.0.6")

    def test_cidr_16(self):
        m = OriginMatcher.parse("129.114.0.0/16")
        assert m.matches("129.114.200.7")
        assert not m.matches("129.115.0.1")

    def test_cidr_24(self):
        m = OriginMatcher.parse("10.3.1.0/24")
        assert m.matches("10.3.1.254")
        assert not m.matches("10.3.2.1")

    def test_cidr_zero_matches_everything(self):
        m = OriginMatcher.parse("0.0.0.0/0")
        assert m.matches("8.8.8.8")

    def test_all_keyword(self):
        assert OriginMatcher.parse("ALL").matches("anything")
        assert OriginMatcher.parse("all").match_all

    def test_invalid_ip(self):
        with pytest.raises(ConfigurationError):
            OriginMatcher.parse("299.1.1.1")
        with pytest.raises(ConfigurationError):
            OriginMatcher.parse("1.2.3")

    def test_invalid_prefix(self):
        with pytest.raises(ConfigurationError):
            OriginMatcher.parse("10.0.0.0/33")

    def test_garbage_candidate_never_matches(self):
        assert not OriginMatcher.parse("10.0.0.0/8").matches("not-an-ip")


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        rules = parse_rules("# header\n\n+ : alice : ALL : ALL  # trailing\n")
        assert len(rules) == 1

    def test_field_count_enforced(self):
        with pytest.raises(ConfigurationError, match="4"):
            parse_rules("+ : alice : ALL")

    def test_permission_validated(self):
        with pytest.raises(ConfigurationError, match="permission"):
            parse_rules("* : alice : ALL : ALL")

    def test_account_list(self):
        rules = parse_rules("+ : alice,bob , carol : ALL : ALL")
        assert rules[0].accounts == ("alice", "bob", "carol")

    def test_bad_date(self):
        with pytest.raises(ConfigurationError, match="expiry"):
            parse_rules("+ : alice : ALL : someday")

    def test_empty_accounts_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_rules("+ :  : ALL : ALL")


class TestMatching:
    def test_default_deny(self, clock):
        assert not acl("", clock).check("alice", "1.2.3.4")

    def test_account_grant(self, clock):
        a = acl("+ : gateway01 : ALL : ALL", clock)
        assert a.check("gateway01", "8.8.8.8")
        assert not a.check("alice", "8.8.8.8")

    def test_ip_grant(self, clock):
        a = acl("+ : ALL : 129.114.0.0/16 : ALL", clock)
        assert a.check("anyone", "129.114.3.4")
        assert not a.check("anyone", "9.9.9.9")

    def test_combined_account_and_ip(self, clock):
        a = acl("+ : alice : 203.0.113.7 : ALL", clock)
        assert a.check("alice", "203.0.113.7")
        assert not a.check("alice", "203.0.113.8")
        assert not a.check("bob", "203.0.113.7")

    def test_first_match_wins_denial(self, clock):
        """A '-' entry earlier in the file overrides later grants."""
        a = acl(
            "- : mallory : ALL : ALL\n+ : ALL : ALL : ALL\n",
            clock,
        )
        assert not a.check("mallory", "1.2.3.4")
        assert a.check("alice", "1.2.3.4")

    def test_blanket_all_all_all(self, clock):
        a = acl("+ : ALL : ALL : ALL", clock)
        assert a.check("anyone", "anywhere")

    def test_multiple_origins(self, clock):
        a = acl("+ : ALL : 10.3.1.0/24,10.4.1.0/24 : ALL", clock)
        assert a.check("x", "10.3.1.9")
        assert a.check("x", "10.4.1.9")
        assert not a.check("x", "10.5.1.9")


class TestExpiry:
    def test_unexpired_variance(self, clock):
        a = acl("+ : alice : ALL : 2016-10-15", clock)
        assert a.check("alice", "1.2.3.4")

    def test_expired_variance(self, clock):
        a = acl("+ : alice : ALL : 2016-09-01", clock)
        assert not a.check("alice", "1.2.3.4")

    def test_expires_at_end_of_day(self):
        clock = SimulatedClock.at("2016-10-15T20:00:00")
        a = acl("+ : alice : ALL : 2016-10-15", clock)
        assert a.check("alice", "1.2.3.4")  # still the named day
        clock.advance(5 * 3600)  # past midnight
        assert not a.check("alice", "1.2.3.4")

    def test_temporary_variance_expires_in_place(self, clock):
        """The paper's temporary variances expire without a config change."""
        a = acl("+ : alice : ALL : 2016-09-20", clock)
        assert a.check("alice", "1.2.3.4")
        clock.advance(10 * 86400)
        assert not a.check("alice", "1.2.3.4")


class TestHotReload:
    def test_file_acl_reloads_on_change(self, tmp_path, clock):
        path = tmp_path / "mfa_exempt.conf"
        path.write_text("+ : alice : ALL : ALL\n")
        a = ExemptionACL(str(path), clock=clock)
        assert a.check("alice", "1.2.3.4")
        assert not a.check("bob", "1.2.3.4")
        # "Changes take effect immediately upon write to disk."
        path.write_text("+ : bob : ALL : ALL\n")
        os.utime(path, (time.time() + 5, time.time() + 5))  # force mtime change
        assert a.check("bob", "1.2.3.4")
        assert not a.check("alice", "1.2.3.4")

    def test_missing_file_means_no_exemptions(self, tmp_path, clock):
        a = ExemptionACL(str(tmp_path / "nope.conf"), clock=clock)
        assert not a.check("alice", "1.2.3.4")

    def test_parse_error_fails_closed(self, tmp_path, clock):
        path = tmp_path / "mfa_exempt.conf"
        path.write_text("+ : alice : ALL : ALL\n")
        a = ExemptionACL(str(path), clock=clock)
        assert a.check("alice", "1.2.3.4")
        path.write_text("this is : not valid\n")
        os.utime(path, (time.time() + 5, time.time() + 5))
        assert not a.check("alice", "1.2.3.4")  # no exemptions at all
        assert a.last_error is not None

    def test_file_deletion_drops_rules(self, tmp_path, clock):
        path = tmp_path / "mfa_exempt.conf"
        path.write_text("+ : alice : ALL : ALL\n")
        a = ExemptionACL(str(path), clock=clock)
        assert a.check("alice", "1.2.3.4")
        path.unlink()
        assert not a.check("alice", "1.2.3.4")

    def test_in_memory_set_text(self, clock):
        a = InMemoryExemptionACL("", clock=clock)
        assert not a.check("alice", "1.2.3.4")
        a.set_text("+ : alice : ALL : ALL\n")
        assert a.check("alice", "1.2.3.4")

    def test_in_memory_parse_error_fails_closed(self, clock):
        a = InMemoryExemptionACL("+ : alice : ALL : ALL\n", clock=clock)
        a.set_text("garbage")
        assert not a.check("alice", "1.2.3.4")
        assert a.last_error


class TestConversationBase:
    def test_base_class_is_abstract(self):
        from repro.pam.conversation import Conversation

        base = Conversation()
        for method, args in (
            ("prompt_echo_off", ("p",)),
            ("prompt_echo_on", ("p",)),
            ("info", ("m",)),
            ("error", ("m",)),
        ):
            with pytest.raises(NotImplementedError):
                getattr(base, method)(*args)

"""Geolocation extension: database, haversine, impossible travel, PAM."""

import pytest

from repro.common.clock import SimulatedClock
from repro.extensions.geolocation import (
    GeoDatabase,
    GeoPoint,
    GeoVelocityMonitor,
    PamGeoCheckModule,
)
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMResult, PAMSession

AUSTIN = GeoPoint(30.27, -97.74, "US", "Austin")
GENEVA = GeoPoint(46.23, 6.05, "CH", "Geneva")
BEIJING = GeoPoint(39.90, 116.41, "CN", "Beijing")


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def geo():
    return GeoDatabase.with_sample_data()


class TestGeoPoint:
    def test_haversine_austin_geneva(self):
        # Great-circle Austin <-> Geneva is about 8,600 km.
        assert AUSTIN.distance_km(GENEVA) == pytest.approx(8600, rel=0.05)

    def test_distance_symmetric(self):
        assert AUSTIN.distance_km(BEIJING) == pytest.approx(
            BEIJING.distance_km(AUSTIN)
        )

    def test_zero_distance(self):
        assert AUSTIN.distance_km(AUSTIN) == 0.0


class TestGeoDatabase:
    def test_lookup(self, geo):
        assert geo.lookup("129.114.3.4").city == "Austin"
        assert geo.lookup("192.0.2.99").country == "CH"

    def test_unmapped_returns_none(self, geo):
        assert geo.lookup("8.8.8.8") is None

    def test_longest_prefix_wins(self):
        db = GeoDatabase()
        db.add_range("10.0.0.0/8", AUSTIN)
        db.add_range("10.5.0.0/16", GENEVA)
        assert db.lookup("10.5.1.1").city == "Geneva"
        assert db.lookup("10.6.1.1").city == "Austin"


class TestGeoVelocity:
    def test_first_login_always_plausible(self, geo, clock):
        monitor = GeoVelocityMonitor(geo, clock)
        assert monitor.observe("alice", "192.0.2.1").plausible

    def test_same_city_plausible(self, geo, clock):
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")
        clock.advance(60)
        verdict = monitor.observe("alice", "198.51.100.9")  # also Austin
        assert verdict.plausible

    def test_impossible_travel_flagged(self, geo, clock):
        """Austin -> Beijing in ten minutes is not a flight."""
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")
        clock.advance(600)
        verdict = monitor.observe("alice", "203.0.113.9")
        assert not verdict.plausible
        assert verdict.speed_kmh > 10_000
        assert verdict.from_city == "Austin" and verdict.to_city == "Beijing"

    def test_plausible_flight(self, geo, clock):
        """Austin -> Geneva in 14 hours is an ordinary itinerary."""
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")
        clock.advance(14 * 3600)
        assert monitor.observe("alice", "192.0.2.9").plausible

    def test_unmapped_origin_skipped(self, geo, clock):
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")
        clock.advance(60)
        assert monitor.observe("alice", "8.8.8.8").plausible

    def test_per_user_state(self, geo, clock):
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")
        clock.advance(60)
        # Bob's first observation is independent of Alice's history.
        assert monitor.observe("bob", "203.0.113.9").plausible

    def test_forget(self, geo, clock):
        monitor = GeoVelocityMonitor(geo, clock)
        monitor.observe("alice", "129.114.0.1")
        monitor.forget("alice")
        clock.advance(60)
        assert monitor.observe("alice", "203.0.113.9").plausible


class TestPamGeoCheckModule:
    def session(self, clock, ip):
        return PAMSession(
            username="alice", remote_ip=ip,
            conversation=ScriptedConversation(), clock=clock,
        )

    def test_allowed_country(self, geo, clock):
        module = PamGeoCheckModule(geo, allowed_countries=["US", "CH"])
        s = self.session(clock, "129.114.0.1")
        assert module.authenticate(s) is PAMResult.SUCCESS
        assert s.items["geo_country"] == "US"

    def test_outside_allowlist_denied(self, geo, clock):
        module = PamGeoCheckModule(geo, allowed_countries=["US"])
        assert (
            module.authenticate(self.session(clock, "203.0.113.9"))
            is PAMResult.AUTH_ERR
        )

    def test_denied_country(self, geo, clock):
        module = PamGeoCheckModule(geo, denied_countries=["CN"])
        assert (
            module.authenticate(self.session(clock, "203.0.113.9"))
            is PAMResult.AUTH_ERR
        )
        assert (
            module.authenticate(self.session(clock, "129.114.0.1"))
            is PAMResult.SUCCESS
        )

    def test_unmapped_default_ignore(self, geo, clock):
        module = PamGeoCheckModule(geo)
        assert module.authenticate(self.session(clock, "8.8.8.8")) is PAMResult.IGNORE

    def test_unmapped_hardened(self, geo, clock):
        module = PamGeoCheckModule(geo, unmapped_is_error=True)
        assert (
            module.authenticate(self.session(clock, "8.8.8.8")) is PAMResult.AUTH_ERR
        )

    def test_impossible_travel_denied_with_message(self, geo, clock):
        monitor = GeoVelocityMonitor(geo, clock)
        module = PamGeoCheckModule(geo, monitor=monitor)
        assert module.authenticate(self.session(clock, "129.114.0.1")) is PAMResult.SUCCESS
        clock.advance(600)
        s = self.session(clock, "203.0.113.9")
        assert module.authenticate(s) is PAMResult.AUTH_ERR
        assert any("km/h" in m for m in s.conversation.messages())


class TestClockBinding:
    """bind_clock on the velocity monitor (the risk engine's geo seam)."""

    def test_default_clock_is_not_injected(self, geo):
        assert GeoVelocityMonitor(geo).clock_injected is False

    def test_supplied_clock_is_injected(self, geo, clock):
        assert GeoVelocityMonitor(geo, clock).clock_injected is True

    def test_bind_clock_drives_velocity_math(self, geo, clock):
        monitor = GeoVelocityMonitor(geo)
        monitor.bind_clock(clock)
        assert monitor.clock_injected is True
        assert monitor.observe("alice", "129.114.0.1").plausible
        clock.advance(600)
        verdict = monitor.observe("alice", "203.0.113.9")
        assert not verdict.plausible
        assert verdict.speed_kmh > 950.0

"""Dynamic risk assessment: signals, thresholds, PAM integration."""

import pytest

from repro.common.clock import SimulatedClock
from repro.extensions.geolocation import GeoDatabase, GeoVelocityMonitor
from repro.extensions.risk import (
    PamRiskGateModule,
    RiskAction,
    RiskAwareExemptionModule,
    RiskEngine,
    RiskWeights,
)
from repro.pam.acl import InMemoryExemptionACL
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMResult, PAMSession, PAMStack


def noon_clock():
    """A clock parked mid-day so the unusual-hour signal stays quiet."""
    return SimulatedClock.at("2016-10-05T12:00:00")


@pytest.fixture
def clock():
    return noon_clock()


@pytest.fixture
def engine(clock):
    return RiskEngine(clock=clock)


class TestSignals:
    def test_clean_login_allows(self, engine):
        decision = engine.assess("alice", "198.51.100.7")
        assert decision.action is RiskAction.ALLOW
        assert decision.score == 0.0

    def test_failure_burst_signal(self, engine):
        for _ in range(3):
            engine.record_failure("alice")
        decision = engine.assess("alice", "198.51.100.7")
        assert "failure_burst" in decision.signals
        assert decision.action is RiskAction.STEP_UP

    def test_failures_age_out(self, engine, clock):
        for _ in range(3):
            engine.record_failure("alice")
        clock.advance(700)  # past the 600 s window
        assert "failure_burst" not in engine.assess("alice", "1.2.3.4").signals

    def test_success_resets_failures(self, engine):
        for _ in range(3):
            engine.record_failure("alice")
        engine.record_success("alice", "198.51.100.7")
        assert "failure_burst" not in engine.assess("alice", "198.51.100.7").signals

    def test_novel_origin_signal(self, engine):
        engine.record_success("alice", "198.51.100.7")
        decision = engine.assess("alice", "203.0.113.9")
        assert "novel_origin" in decision.signals

    def test_no_novel_signal_without_history(self, engine):
        # A first-ever login has no baseline to be novel against.
        assert "novel_origin" not in engine.assess("alice", "1.2.3.4").signals

    def test_known_origin_quiet(self, engine):
        engine.record_success("alice", "198.51.100.7")
        assert "novel_origin" not in engine.assess("alice", "198.51.100.7").signals

    def test_unusual_hour_signal(self):
        clock = SimulatedClock.at("2016-10-05T03:00:00")
        engine = RiskEngine(clock=clock)
        assert "unusual_hour" in engine.assess("alice", "1.2.3.4").signals

    def test_watchlist_signal(self, engine):
        engine.add_watchlist("203.0.113.0/24")
        decision = engine.assess("alice", "203.0.113.66")
        assert "watchlisted_network" in decision.signals

    def test_impossible_travel_signal(self, clock):
        geo = GeoDatabase.with_sample_data()
        monitor = GeoVelocityMonitor(geo, clock)
        engine = RiskEngine(clock=clock, geo_monitor=monitor)
        engine.assess("alice", "129.114.0.1")  # Austin baseline
        clock.advance(600)
        decision = engine.assess("alice", "203.0.113.9")  # Beijing, 10 min later
        assert "impossible_travel" in decision.signals


class TestThresholds:
    def test_stacked_signals_deny(self, engine):
        engine.record_success("alice", "198.51.100.7")
        engine.add_watchlist("203.0.113.0/24")
        for _ in range(3):
            engine.record_failure("alice")
        decision = engine.assess("alice", "203.0.113.66")
        # burst 0.40 + novel 0.25 + watchlist 0.35 = 1.0 -> DENY
        assert decision.action is RiskAction.DENY
        assert decision.score == pytest.approx(1.0)

    def test_score_clamped(self, clock):
        engine = RiskEngine(
            clock=clock, weights=RiskWeights(failure_burst=0.9, novel_origin=0.9)
        )
        engine.record_success("alice", "1.1.1.1")
        for _ in range(3):
            engine.record_failure("alice")
        assert engine.assess("alice", "2.2.2.2").score == 1.0

    def test_invalid_thresholds(self, clock):
        with pytest.raises(ValueError):
            RiskEngine(clock=clock, step_up_threshold=0.8, deny_threshold=0.5)

    def test_custom_thresholds(self, clock):
        strict = RiskEngine(clock=clock, step_up_threshold=0.05, deny_threshold=0.2)
        strict.record_success("alice", "1.1.1.1")
        decision = strict.assess("alice", "2.2.2.2")  # novel: 0.25
        assert decision.action is RiskAction.DENY


class TestPamIntegration:
    def session(self, clock, username="alice", ip="198.51.100.7"):
        return PAMSession(
            username=username, remote_ip=ip,
            conversation=ScriptedConversation(), clock=clock,
        )

    def test_allow_passes_through(self, engine, clock):
        module = PamRiskGateModule(engine)
        s = self.session(clock)
        assert module.authenticate(s) is PAMResult.SUCCESS
        assert s.items["risk_score"] == 0.0

    def test_deny_blocks_with_message(self, engine, clock):
        engine.add_watchlist("203.0.113.0/24")
        engine.record_success("alice", "1.1.1.1")
        for _ in range(3):
            engine.record_failure("alice")
        module = PamRiskGateModule(engine)
        s = self.session(clock, ip="203.0.113.66")
        assert module.authenticate(s) is PAMResult.AUTH_ERR
        assert any("risk" in m for m in s.conversation.messages())

    def test_step_up_suppresses_exemption(self, clock):
        """The composition: risky exempted logins must present a token.

        The engine is tuned so a single novel-origin signal (0.25) crosses
        the step-up line — the posture an operator would pick for service
        accounts whose origins are supposed to be static.
        """
        engine = RiskEngine(clock=clock, step_up_threshold=0.2)
        engine.record_success("gateway01", "203.0.113.50")
        acl = InMemoryExemptionACL("+ : gateway01 : ALL : ALL", clock=clock)

        class AlwaysToken:
            name = "token_stub"
            calls = 0

            def authenticate(self, session):
                AlwaysToken.calls += 1
                return PAMResult.SUCCESS

        stack = PAMStack("sshd")
        stack.append("required", PamRiskGateModule(engine))
        stack.append("sufficient", RiskAwareExemptionModule(acl))
        stack.append("requisite", AlwaysToken())

        # Known origin: exemption short-circuits, token never runs.
        s = self.session(clock, username="gateway01", ip="203.0.113.50")
        assert stack.authenticate(s) is PAMResult.SUCCESS
        assert AlwaysToken.calls == 0

        # Novel origin: step-up forces the token module to run.
        s = self.session(clock, username="gateway01", ip="8.8.8.8")
        assert stack.authenticate(s) is PAMResult.SUCCESS
        assert AlwaysToken.calls == 1
        assert s.items["risk_step_up"] is True

    def test_risk_aware_exemption_without_step_up(self, clock):
        acl = InMemoryExemptionACL("+ : alice : ALL : ALL", clock=clock)
        module = RiskAwareExemptionModule(acl)
        s = self.session(clock)
        assert module.authenticate(s) is PAMResult.SUCCESS
        assert s.items["mfa_exempt"] is True


class TestClockBinding:
    """The limiter's clock-injection seam, mirrored on the risk engine.

    Regression coverage for the bug where an engine built without a clock
    silently kept the wall clock: failure bursts pruned against real time
    while the policy engine evaluated in virtual time, so the burst
    signal could never fire in a simulation.
    """

    def test_default_clock_is_not_injected(self):
        assert RiskEngine().clock_injected is False

    def test_supplied_clock_is_injected(self, clock):
        assert RiskEngine(clock=clock).clock_injected is True

    def test_bind_clock_adopts_and_marks(self, clock):
        engine = RiskEngine()
        engine.bind_clock(clock)
        assert engine.clock_injected is True
        # Failure pruning now follows the bound clock: a burst recorded
        # in virtual time ages out when *virtual* time advances.
        for _ in range(3):
            engine.record_failure("alice")
        assert "failure_burst" in engine.assess("alice", "10.0.0.1").signals
        clock.advance(601)
        assert "failure_burst" not in engine.assess("alice", "10.0.0.1").signals

    def test_unusual_hour_follows_bound_clock(self):
        engine = RiskEngine()
        engine.bind_clock(SimulatedClock.at("2016-10-05T03:00:00"))
        assert "unusual_hour" in engine.assess("alice", "10.0.0.1").signals

    def test_bind_clock_propagates_to_geo_monitor(self, clock):
        monitor = GeoVelocityMonitor(GeoDatabase.with_sample_data())
        engine = RiskEngine(geo_monitor=monitor)
        engine.bind_clock(clock)
        assert monitor.clock_injected is True
        # Austin then Beijing ten simulated minutes later: impossible on
        # the bound clock, invisible on the wall clock.
        engine.assess("alice", "129.114.0.1")
        clock.advance(600)
        assert "impossible_travel" in engine.assess("alice", "203.0.113.9").signals

    def test_bind_clock_respects_geo_monitors_own_clock(self, clock):
        own = SimulatedClock.at("2016-10-05T12:00:00")
        monitor = GeoVelocityMonitor(GeoDatabase.with_sample_data(), own)
        engine = RiskEngine(geo_monitor=monitor)
        engine.bind_clock(clock)
        assert monitor._clock is own

"""Property-based contracts of the risk engine (Hypothesis).

Three invariants every scoring configuration must satisfy, regardless of
which weights an operator dials in:

* the score is always clamped to [0, 1];
* firing an additional signal never *lowers* the score (monotonicity —
  more evidence of attack cannot make a login look safer);
* the threshold ordering ``step_up <= deny`` is enforced at construction,
  and the action mapping respects it for every score.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimulatedClock
from repro.extensions.risk import RiskAction, RiskEngine, RiskWeights

#: The signals a bare engine (no geo monitor) can fire, with the state
#: manipulation that arms each one.
SIGNALS = ("failure_burst", "novel_origin", "unusual_hour", "watchlisted_network")

weight = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
weights_strategy = st.fixed_dictionaries({name: weight for name in SIGNALS})
flags_strategy = st.fixed_dictionaries({name: st.booleans() for name in SIGNALS})
threshold = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ATTACKER_IP = "203.0.113.5"


def build_engine(flags, weights, step_up=0.0, deny=1.0):
    """An engine whose next ``assess`` fires exactly the flagged signals."""
    clock = SimulatedClock.at(
        "2016-10-05T03:00:00" if flags["unusual_hour"] else "2016-10-05T12:00:00"
    )
    engine = RiskEngine(
        clock=clock,
        weights=RiskWeights(impossible_travel=0.0, **weights),
        step_up_threshold=step_up,
        deny_threshold=deny,
    )
    if flags["novel_origin"]:
        # A known origin that is not the attacker's address.  Recorded
        # *before* the failures: a success resets the burst window.
        engine.record_success("alice", "198.51.100.1")
    if flags["failure_burst"]:
        for _ in range(3):
            engine.record_failure("alice")
    if flags["watchlisted_network"]:
        engine.add_watchlist("203.0.113.0/24")
    return engine


@settings(max_examples=60, deadline=None)
@given(flags=flags_strategy, weights=weights_strategy)
def test_score_always_clamped(flags, weights):
    decision = build_engine(flags, weights).assess("alice", ATTACKER_IP)
    assert 0.0 <= decision.score <= 1.0


@settings(max_examples=60, deadline=None)
@given(flags=flags_strategy, weights=weights_strategy)
def test_score_is_clamped_signal_sum(flags, weights):
    decision = build_engine(flags, weights).assess("alice", ATTACKER_IP)
    expected = min(sum(weights[name] for name in SIGNALS if flags[name]), 1.0)
    assert decision.score == pytest.approx(expected)
    assert sorted(decision.signals) == sorted(n for n in SIGNALS if flags[n])


@settings(max_examples=60, deadline=None)
@given(
    flags=flags_strategy,
    weights=weights_strategy,
    extra=st.sampled_from(SIGNALS),
)
def test_adding_a_signal_never_lowers_score(flags, weights, extra):
    base = build_engine(flags, weights).assess("alice", ATTACKER_IP)
    more = build_engine({**flags, extra: True}, weights).assess("alice", ATTACKER_IP)
    assert more.score >= base.score


@settings(max_examples=60, deadline=None)
@given(step_up=threshold, deny=threshold)
def test_threshold_ordering_enforced_at_construction(step_up, deny):
    if step_up <= deny:
        engine = RiskEngine(step_up_threshold=step_up, deny_threshold=deny)
        assert engine.step_up_threshold <= engine.deny_threshold
    else:
        with pytest.raises(ValueError):
            RiskEngine(step_up_threshold=step_up, deny_threshold=deny)


@settings(max_examples=60, deadline=None)
@given(
    flags=flags_strategy,
    weights=weights_strategy,
    step_up=threshold,
    deny=threshold,
)
def test_action_respects_threshold_ordering(flags, weights, step_up, deny):
    if step_up > deny:
        step_up, deny = deny, step_up
    engine = build_engine(flags, weights, step_up=step_up, deny=deny)
    decision = engine.assess("alice", ATTACKER_IP)
    if decision.score >= deny:
        assert decision.action is RiskAction.DENY
    elif decision.score >= step_up:
        assert decision.action is RiskAction.STEP_UP
    else:
        assert decision.action is RiskAction.ALLOW

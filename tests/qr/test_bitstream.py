"""Bit-level reader/writer round trips and edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.qr.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_write_single_bits(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(0, 1)
        w.write(1, 1)
        assert w.bits() == [1, 0, 1]

    def test_value_too_large_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_to_bytes_pads_tail(self):
        w = BitWriter()
        w.write(0b101, 3)
        assert w.to_bytes() == bytes([0b10100000])

    def test_write_bytes(self):
        w = BitWriter()
        w.write_bytes(b"\xab\xcd")
        assert w.to_bytes() == b"\xab\xcd"

    def test_len_counts_bits(self):
        w = BitWriter()
        w.write(0, 4)
        w.write(255, 8)
        assert len(w) == 12


class TestBitReader:
    def test_read_from_bytes(self):
        r = BitReader(b"\xf0")
        assert r.read(4) == 0xF
        assert r.read(4) == 0x0

    def test_read_from_bit_list(self):
        r = BitReader([1, 0, 1, 1])
        assert r.read(4) == 0b1011

    def test_read_past_end_raises(self):
        r = BitReader([1, 0])
        with pytest.raises(ValueError):
            r.read(3)

    def test_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.remaining() == 16
        r.read(5)
        assert r.remaining() == 11

    def test_read_bytes(self):
        r = BitReader(b"\x01\x02\x03")
        assert r.read_bytes(2) == b"\x01\x02"


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16))))
    def test_write_then_read(self, values):
        w = BitWriter()
        written = []
        for value, nbits in values:
            value %= 1 << nbits
            w.write(value, nbits)
            written.append((value, nbits))
        r = BitReader(w.bits())
        for value, nbits in written:
            assert r.read(nbits) == value

    @given(st.binary(max_size=50))
    def test_bytes_round_trip(self, data):
        w = BitWriter()
        w.write_bytes(data)
        assert BitReader(w.to_bytes()).read_bytes(len(data)) == data

"""QR constant tables: capacities, format/version words, masks."""

import pytest

from repro.qr.tables import (
    EC_TABLE,
    MASK_FUNCTIONS,
    byte_mode_capacity,
    char_count_bits,
    data_codewords,
    decode_format_info,
    format_info_bits,
    symbol_size,
    total_codewords,
    version_info_bits,
)

# Total codewords per version (ISO 18004 table 1).
TOTAL_CODEWORDS = {
    1: 26, 2: 44, 3: 70, 4: 100, 5: 134,
    6: 172, 7: 196, 8: 242, 9: 292, 10: 346,
}


class TestCapacities:
    @pytest.mark.parametrize("version,total", TOTAL_CODEWORDS.items())
    @pytest.mark.parametrize("level", "LMQH")
    def test_total_codewords_consistent(self, version, total, level):
        assert total_codewords(version, level) == total

    def test_symbol_sizes(self):
        assert symbol_size(1) == 21
        assert symbol_size(10) == 57

    def test_symbol_size_invalid(self):
        with pytest.raises(ValueError):
            symbol_size(0)
        with pytest.raises(ValueError):
            symbol_size(41)

    def test_known_data_codewords(self):
        assert data_codewords(1, "L") == 19
        assert data_codewords(1, "H") == 9
        assert data_codewords(5, "Q") == 2 * 15 + 2 * 16
        assert data_codewords(10, "M") == 4 * 43 + 1 * 44

    def test_byte_capacity_version1(self):
        # v1-L: 19 data codewords, minus 4-bit mode + 8-bit count = 17 bytes.
        assert byte_mode_capacity(1, "L") == 17
        assert byte_mode_capacity(1, "H") == 7

    def test_char_count_field_widths(self):
        assert char_count_bits(9) == 8
        assert char_count_bits(10) == 16

    def test_capacity_monotone_in_version(self):
        for level in "LMQH":
            caps = [byte_mode_capacity(v, level) for v in range(1, 11)]
            assert caps == sorted(caps)

    def test_capacity_decreases_with_ecc(self):
        for version in range(1, 11):
            assert (
                byte_mode_capacity(version, "L")
                > byte_mode_capacity(version, "M")
                > byte_mode_capacity(version, "Q")
                > byte_mode_capacity(version, "H")
            )


class TestFormatInfo:
    def test_known_word(self):
        # ISO 18004's worked example: level M, mask 5 -> 0x40CE after masking.
        assert format_info_bits("M", 5) == 0b100000011001110

    def test_all_words_distinct(self):
        words = {format_info_bits(lv, m) for lv in "LMQH" for m in range(8)}
        assert len(words) == 32

    def test_decode_clean(self):
        for level in "LMQH":
            for mask in range(8):
                assert decode_format_info(format_info_bits(level, mask)) == (
                    level,
                    mask,
                )

    def test_decode_corrects_up_to_three_bit_errors(self):
        word = format_info_bits("Q", 3)
        damaged = word ^ 0b100000010000001  # 3 bit flips
        assert decode_format_info(damaged) == ("Q", 3)

    def test_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            format_info_bits("M", 8)

    def test_minimum_distance_allows_3_errors(self):
        # BCH(15,5) has minimum distance >= 7 after masking too.
        words = [format_info_bits(lv, m) for lv in "LMQH" for m in range(8)]
        for i, a in enumerate(words):
            for b in words[i + 1 :]:
                assert bin(a ^ b).count("1") >= 7


class TestVersionInfo:
    def test_known_word(self):
        # ISO 18004 example: version 7 -> 0b000111110010010100.
        assert version_info_bits(7) == 0b000111110010010100

    def test_below_seven_rejected(self):
        with pytest.raises(ValueError):
            version_info_bits(6)

    def test_top_bits_encode_version(self):
        for version in range(7, 11):
            assert version_info_bits(version) >> 12 == version


class TestMasks:
    def test_eight_masks(self):
        assert len(MASK_FUNCTIONS) == 8

    def test_mask0_checkerboard(self):
        mask = MASK_FUNCTIONS[0]
        assert mask(0, 0) and not mask(0, 1) and mask(1, 1)

    def test_masks_differ(self):
        # Sample a grid; no two masks agree everywhere.
        grids = []
        for fn in MASK_FUNCTIONS:
            grids.append(tuple(fn(r, c) for r in range(12) for c in range(12)))
        assert len(set(grids)) == 8


class TestECTableIntegrity:
    def test_group2_has_one_more_codeword(self):
        for (version, level), (_, groups) in EC_TABLE.items():
            if len(groups) == 2:
                assert groups[1][1] == groups[0][1] + 1, (version, level)

    def test_ec_even(self):
        # QR EC codeword counts are always even (correction pairs).
        for (_, _), (ec, _) in EC_TABLE.items():
            assert ec % 2 == 0 or ec in (7, 13, 15, 17)  # v1 exceptions

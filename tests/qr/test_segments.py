"""QR segment modes: numeric/alphanumeric/byte compaction and selection."""

import pytest
from hypothesis import given, strategies as st

from repro.qr import decode_matrix, encode
from repro.qr.bitstream import BitReader, BitWriter
from repro.qr.segments import (
    ALPHANUMERIC_CHARSET,
    MODE_ALPHANUMERIC,
    MODE_BYTE,
    MODE_NUMERIC,
    choose_mode,
    count_bits,
    read_payload,
    segment_bit_length,
    write_segment,
)


class TestModeSelection:
    def test_digits_choose_numeric(self):
        assert choose_mode(b"0123456789") == MODE_NUMERIC

    def test_uppercase_chooses_alphanumeric(self):
        assert choose_mode(b"HELLO WORLD $1.50") == MODE_ALPHANUMERIC

    def test_lowercase_falls_to_byte(self):
        assert choose_mode(b"hello") == MODE_BYTE

    def test_binary_is_byte(self):
        assert choose_mode(b"\x00\xff") == MODE_BYTE

    def test_empty_is_byte(self):
        assert choose_mode(b"") == MODE_BYTE


class TestBitLengths:
    def test_numeric_denser_than_alnum_denser_than_byte(self):
        n = 30
        numeric = segment_bit_length(MODE_NUMERIC, n, 1)
        alnum = segment_bit_length(MODE_ALPHANUMERIC, n, 1)
        byte = segment_bit_length(MODE_BYTE, n, 1)
        assert numeric < alnum < byte

    def test_numeric_group_remainders(self):
        base = segment_bit_length(MODE_NUMERIC, 3, 1)
        assert segment_bit_length(MODE_NUMERIC, 4, 1) == base + 4
        assert segment_bit_length(MODE_NUMERIC, 5, 1) == base + 7
        assert segment_bit_length(MODE_NUMERIC, 6, 1) == base + 10

    def test_count_field_widths(self):
        assert count_bits(MODE_NUMERIC, 9) == 10
        assert count_bits(MODE_NUMERIC, 10) == 12
        assert count_bits(MODE_ALPHANUMERIC, 9) == 9
        assert count_bits(MODE_BYTE, 10) == 16


class TestSegmentRoundTrip:
    def round_trip(self, data, mode, version=5):
        writer = BitWriter()
        write_segment(writer, data, mode, version)
        writer.write(0, 4)  # terminator
        return read_payload(BitReader(writer.bits()), version)

    @pytest.mark.parametrize("text", ["1", "12", "123", "1234", "12345", "0987654321"])
    def test_numeric(self, text):
        assert self.round_trip(text.encode(), MODE_NUMERIC) == text.encode()

    @pytest.mark.parametrize("text", ["A", "AB", "ABC", "HELLO WORLD", "A1B2:/$%"])
    def test_alphanumeric(self, text):
        assert self.round_trip(text.encode(), MODE_ALPHANUMERIC) == text.encode()

    def test_leading_zeros_survive(self):
        assert self.round_trip(b"007", MODE_NUMERIC) == b"007"
        assert self.round_trip(b"0001", MODE_NUMERIC) == b"0001"

    @given(st.text(alphabet="0123456789", min_size=1, max_size=40))
    def test_numeric_property(self, text):
        assert self.round_trip(text.encode(), MODE_NUMERIC) == text.encode()

    @given(st.text(alphabet=ALPHANUMERIC_CHARSET, min_size=1, max_size=40))
    def test_alphanumeric_property(self, text):
        assert self.round_trip(text.encode(), MODE_ALPHANUMERIC) == text.encode()


class TestEndToEndModes:
    def test_numeric_symbol_round_trip(self):
        payload = "31415926535897932384626433832795"
        qr = encode(payload, level="M")
        assert decode_matrix(qr.matrix).decode() == payload

    def test_alphanumeric_symbol_round_trip(self):
        payload = "OTPAUTH TOTP TACC:CPROCTOR $1.50"
        qr = encode(payload, level="M")
        assert decode_matrix(qr.matrix).decode() == payload

    def test_mode_pinning(self):
        qr = encode("12345", level="M", mode="byte")
        assert decode_matrix(qr.matrix) == b"12345"

    def test_invalid_mode_name(self):
        with pytest.raises(ValueError, match="invalid mode"):
            encode("x", mode="kanji")

    def test_numeric_mode_rejects_text(self):
        with pytest.raises(ValueError):
            encode("HELLO", mode="numeric")

    def test_alphanumeric_mode_rejects_lowercase(self):
        with pytest.raises(ValueError):
            encode("hello", mode="alphanumeric")

    def test_compaction_reduces_version(self):
        """The practical gain: the same characters need a smaller symbol
        in a denser mode."""
        digits = "9" * 100
        numeric = encode(digits, level="M")  # auto -> numeric
        forced_byte = encode(digits, level="M", mode="byte")
        assert numeric.version < forced_byte.version

    def test_uppercased_otpauth_uri_compacts(self):
        from repro.crypto.base32 import b32encode

        secret = b32encode(b"12345678901234567890", pad=False)
        upper_uri = f"OTPAUTH://TOTP/HPC:ALICE?SECRET={secret}"
        compact = encode(upper_uri, level="M")
        byte_form = encode(upper_uri, level="M", mode="byte")
        assert compact.version <= byte_form.version
        assert decode_matrix(compact.matrix).decode() == upper_uri

    def test_noise_tolerance_in_alphanumeric(self):
        from tests.qr.test_decoder import flip_data_modules

        qr = encode("ALPHANUMERIC NOISE TEST 123", level="H")
        matrix = flip_data_modules(qr, 6, seed=4)
        assert decode_matrix(matrix) == b"ALPHANUMERIC NOISE TEST 123"


class TestEndToEndProperty:
    from hypothesis import given, settings, strategies as st

    @given(
        payload=st.binary(min_size=0, max_size=100),
        level=st.sampled_from("LMQH"),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_payload_round_trips(self, payload, level):
        from repro.qr.tables import byte_mode_capacity

        if len(payload) > byte_mode_capacity(10, level):
            return
        qr = encode(payload, level=level)
        assert decode_matrix(qr.matrix) == payload

    @given(
        text=st.text(
            alphabet=ALPHANUMERIC_CHARSET + "abcdefghijklmnop",
            min_size=0, max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mixed_text_auto_mode(self, text):
        qr = encode(text, level="M")
        assert decode_matrix(qr.matrix).decode() == text

"""QR matrix skeleton invariants shared by encoder and decoder."""

import pytest

from repro.qr.matrix import build_skeleton, data_positions
from repro.qr.tables import symbol_size, total_codewords


class TestSkeleton:
    @pytest.mark.parametrize("version", range(1, 11))
    def test_dimensions(self, version):
        modules, reserved = build_skeleton(version)
        size = symbol_size(version)
        assert len(modules) == size and len(reserved) == size

    @pytest.mark.parametrize("version", range(1, 11))
    def test_data_positions_cover_unreserved_exactly_once(self, version):
        _, reserved = build_skeleton(version)
        size = symbol_size(version)
        positions = list(data_positions(version, reserved))
        assert len(positions) == len(set(positions))
        unreserved = {
            (r, c) for r in range(size) for c in range(size) if not reserved[r][c]
        }
        assert set(positions) == unreserved

    @pytest.mark.parametrize("version", range(1, 11))
    @pytest.mark.parametrize("level", "LMQH")
    def test_capacity_fits_in_data_modules(self, version, level):
        _, reserved = build_skeleton(version)
        size = symbol_size(version)
        data_modules = sum(
            1 for r in range(size) for c in range(size) if not reserved[r][c]
        )
        needed = 8 * total_codewords(version, level)
        assert needed <= data_modules
        # Remainder bits are at most 7 (ISO 18004 table 1).
        assert data_modules - needed <= 7

    def test_timing_pattern_reserved(self):
        _, reserved = build_skeleton(2)
        size = symbol_size(2)
        for i in range(size):
            assert reserved[6][i] == 1
            assert reserved[i][6] == 1

    def test_version_info_reserved_only_v7_plus(self):
        _, reserved6 = build_skeleton(6)
        _, reserved7 = build_skeleton(7)
        size6, size7 = symbol_size(6), symbol_size(7)
        # v6: the version-info corner is free for data.
        assert reserved6[0][size6 - 9] == 0
        # v7: it is reserved.
        assert reserved7[0][size7 - 11] == 1

    def test_placement_order_starts_bottom_right(self):
        _, reserved = build_skeleton(1)
        first = next(iter(data_positions(1, reserved)))
        size = symbol_size(1)
        assert first == (size - 1, size - 1)

"""QR decoder: noise tolerance, damage handling, malformed input."""

import random

import pytest

from repro.qr.decoder import QRDecodeError, decode_matrix
from repro.qr.encoder import encode
from repro.qr.matrix import build_skeleton


def flip_data_modules(qr, count, seed=0):
    """Flip ``count`` random non-function modules (scan noise)."""
    rng = random.Random(seed)
    _, reserved = build_skeleton(qr.version)
    matrix = [row[:] for row in qr.matrix]
    candidates = [
        (r, c)
        for r in range(qr.size)
        for c in range(qr.size)
        if not reserved[r][c]
    ]
    for r, c in rng.sample(candidates, count):
        matrix[r][c] ^= 1
    return matrix


class TestNoiseTolerance:
    def test_clean_decode(self):
        qr = encode(b"clean", level="M")
        assert decode_matrix(qr.matrix) == b"clean"

    @pytest.mark.parametrize("flips", [1, 4, 8])
    def test_level_h_survives_noise(self, flips):
        qr = encode(b"noise tolerance payload!", level="H")
        matrix = flip_data_modules(qr, flips, seed=flips)
        assert decode_matrix(matrix) == b"noise tolerance payload!"

    def test_massive_damage_raises(self):
        qr = encode(b"doomed", level="L")
        matrix = flip_data_modules(qr, 60, seed=3)
        with pytest.raises(QRDecodeError):
            decode_matrix(matrix)

    def test_format_info_damage_recovered(self):
        # Corrupt up to 3 bits of copy 1; BCH correction handles it.
        qr = encode(b"format damage", level="M")
        matrix = [row[:] for row in qr.matrix]
        matrix[8][0] ^= 1
        matrix[8][2] ^= 1
        assert decode_matrix(matrix) == b"format damage"

    def test_format_copy2_used_when_copy1_destroyed(self):
        qr = encode(b"copy two", level="M")
        matrix = [row[:] for row in qr.matrix]
        # Destroy most of copy 1 (around the top-left finder).
        for i in list(range(6)) + [7, 8]:
            matrix[8][i] ^= 1
            matrix[i if i != 8 else 7][8] ^= 1
        assert decode_matrix(matrix) == b"copy two"


class TestMalformedInput:
    def test_not_square(self):
        with pytest.raises(QRDecodeError, match="square"):
            decode_matrix([[0, 1], [0]])

    def test_invalid_size(self):
        with pytest.raises(QRDecodeError, match="valid QR symbol size"):
            decode_matrix([[0] * 20 for _ in range(20)])

    def test_all_zero_matrix(self):
        with pytest.raises(QRDecodeError):
            decode_matrix([[0] * 21 for _ in range(21)])

    def test_all_ones_matrix(self):
        with pytest.raises(QRDecodeError):
            decode_matrix([[1] * 21 for _ in range(21)])


class TestLargeSymbols:
    def test_version10_round_trip_with_noise(self):
        payload = bytes(range(140))  # v10-Q holds up to 151 bytes
        qr = encode(payload, level="Q", version=10)
        matrix = flip_data_modules(qr, 12, seed=10)
        assert decode_matrix(matrix) == payload

    def test_multiblock_interleaving(self):
        # Version 5-Q uses two block groups (2x15 + 2x16): exercises the
        # deinterleave path.
        payload = bytes((i * 13) % 256 for i in range(60))
        qr = encode(payload, level="Q", version=5)
        assert decode_matrix(qr.matrix) == payload

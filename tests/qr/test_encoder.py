"""QR encoder: structural invariants and full-pipeline round trips."""

import random

import pytest

from repro.qr.decoder import decode_matrix
from repro.qr.encoder import encode
from repro.qr.matrix import build_skeleton
from repro.qr.tables import byte_mode_capacity, symbol_size


class TestVersionSelection:
    def test_smallest_version_chosen(self):
        assert encode(b"x" * 10, level="L").version == 1
        assert encode(b"x" * 18, level="L").version == 2

    def test_pinned_version(self):
        qr = encode(b"hi", level="M", version=5)
        assert qr.version == 5
        assert qr.size == symbol_size(5)

    def test_over_capacity_pinned_version(self):
        with pytest.raises(ValueError, match="exceeds"):
            encode(b"x" * 100, level="H", version=1)

    def test_over_max_capacity(self):
        with pytest.raises(ValueError):
            encode(b"x" * 1000, level="H")

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            encode(b"x", level="X")


class TestStructure:
    @pytest.fixture
    def qr(self):
        return encode(b"structural test payload", level="M")

    def test_matrix_is_square(self, qr):
        assert all(len(row) == qr.size for row in qr.matrix)

    def test_finder_pattern_top_left(self, qr):
        # Outer ring dark, inner ring light, core dark, separator light.
        assert qr.matrix[0][0] == 1 and qr.matrix[0][6] == 1
        assert qr.matrix[1][1] == 0 and qr.matrix[1][5] == 0
        assert qr.matrix[3][3] == 1
        assert qr.matrix[7][7] == 0  # separator corner

    def test_finder_patterns_all_corners(self, qr):
        n = qr.size
        for r0, c0 in ((0, 0), (0, n - 7), (n - 7, 0)):
            assert qr.matrix[r0][c0] == 1
            assert qr.matrix[r0 + 6][c0 + 6] == 1
            assert qr.matrix[r0 + 3][c0 + 3] == 1

    def test_timing_pattern_alternates(self, qr):
        row6 = qr.matrix[6][8 : qr.size - 8]
        for i, module in enumerate(row6, start=8):
            assert module == 1 - i % 2

    def test_dark_module(self, qr):
        assert qr.matrix[qr.size - 8][8] == 1

    def test_binary_modules_only(self, qr):
        assert {m for row in qr.matrix for m in row} <= {0, 1}

    def test_mask_chosen_in_range(self, qr):
        assert 0 <= qr.mask <= 7

    def test_alignment_pattern_version2(self):
        qr = encode(b"x" * 20, level="L", version=2)
        # Center at (18, 18) is dark with a light ring.
        assert qr.matrix[18][18] == 1
        assert qr.matrix[17][18] == 0
        assert qr.matrix[16][16] == 1

    def test_version_info_present_v7(self):
        qr = encode(b"x" * 100, level="L", version=7)
        _, reserved = build_skeleton(7)
        n = qr.size
        # Version info blocks are reserved near the top-right/bottom-left.
        assert reserved[0][n - 11] == 1
        assert reserved[n - 11][0] == 1


class TestRoundTrip:
    @pytest.mark.parametrize("level", "LMQH")
    @pytest.mark.parametrize("size", [1, 7, 17, 40, 90])
    def test_payload_sizes(self, level, size):
        payload = bytes((i * 7 + 3) % 256 for i in range(size))
        if size > byte_mode_capacity(10, level):
            pytest.skip("beyond version-10 capacity at this level")
        qr = encode(payload, level=level)
        assert decode_matrix(qr.matrix) == payload

    @pytest.mark.parametrize("version", range(1, 11))
    def test_every_version(self, version):
        capacity = byte_mode_capacity(version, "M")
        payload = bytes(range(min(capacity, 200)))
        qr = encode(payload, level="M", version=version)
        assert decode_matrix(qr.matrix) == payload

    @pytest.mark.parametrize("mask", range(8))
    def test_every_mask(self, mask):
        payload = b"mask test"
        qr = encode(payload, level="M", mask=mask)
        assert qr.mask == mask
        assert decode_matrix(qr.matrix) == payload

    def test_full_capacity_payload(self):
        capacity = byte_mode_capacity(4, "Q")
        payload = bytes(random.Random(1).randrange(256) for _ in range(capacity))
        qr = encode(payload, level="Q", version=4)
        assert decode_matrix(qr.matrix) == payload

    def test_empty_payload(self):
        qr = encode(b"", level="M")
        assert decode_matrix(qr.matrix) == b""

    def test_utf8_string(self):
        text = "otpauth://totp/TACC:user?secret=ABCD&issuer=TACC"
        qr = encode(text)
        assert decode_matrix(qr.matrix).decode() == text


class TestRendering:
    def test_to_text_contains_modules(self):
        qr = encode(b"render", level="L")
        text = qr.to_text(dark="#", light=".", border=1)
        lines = text.splitlines()
        assert len(lines) == qr.size + 2
        assert "#" in text and "." in text

    def test_border_is_light(self):
        qr = encode(b"render", level="L")
        text = qr.to_text(dark="#", light=".", border=2)
        assert set(text.splitlines()[0]) == {"."}


class TestInputValidation:
    def test_mask_out_of_range(self):
        with pytest.raises(ValueError, match="mask"):
            encode(b"x", mask=8)
        with pytest.raises(ValueError, match="mask"):
            encode(b"x", mask=-1)

"""GF(256) field axioms and polynomial arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.qr.galois import (
    EXP,
    LOG,
    gf_div,
    gf_inverse,
    gf_mul,
    gf_pow,
    poly_add,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_log_inverse_of_each_other(self):
        for value in range(1, 256):
            assert EXP[LOG[value]] == value

    def test_generator_cycles_through_field(self):
        assert len({EXP[i] for i in range(255)}) == 255


class TestFieldAxioms:
    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(elements)
    def test_mul_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_mul_zero(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inverse(a)) == 1

    @given(nonzero, nonzero)
    def test_div_undoes_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_inverse_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_inverse(0)

    @given(nonzero, st.integers(min_value=0, max_value=20))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = gf_mul(expected, a)
        assert gf_pow(a, n) == expected

    @given(nonzero)
    def test_negative_pow_is_inverse(self, a):
        assert gf_pow(a, -1) == gf_inverse(a)

    def test_pow_of_zero(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)


polys = st.lists(elements, min_size=1, max_size=8)


class TestPolynomials:
    @given(polys, polys)
    def test_add_commutative(self, p, q):
        assert poly_add(p, q) == poly_add(q, p)

    @given(polys, elements)
    def test_eval_of_scale(self, p, x):
        # (c*p)(x) == c * p(x)
        c = 7
        assert poly_eval(poly_scale(p, c), x) == gf_mul(c, poly_eval(p, x))

    @given(polys, polys, elements)
    def test_eval_of_product(self, p, q, x):
        assert poly_eval(poly_mul(p, q), x) == gf_mul(poly_eval(p, x), poly_eval(q, x))

    @given(polys, polys.filter(lambda q: q[0] != 0))
    def test_divmod_reconstructs(self, p, q):
        if len(p) < len(q):
            return
        quotient, remainder = poly_divmod(p, q)
        recombined = poly_add(poly_mul(quotient, q), remainder)
        # Strip leading zeros before comparing.
        def strip(poly):
            out = list(poly)
            while len(out) > 1 and out[0] == 0:
                out.pop(0)
            return out

        assert strip(recombined) == strip(p)

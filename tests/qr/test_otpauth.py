"""otpauth URI building/parsing and the QR provisioning round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.totp import TOTPGenerator
from repro.common.clock import SimulatedClock
from repro.qr import build_otpauth_uri, decode_matrix, encode, parse_otpauth_uri

SECRET = b"12345678901234567890"


class TestBuild:
    def test_uri_shape(self):
        uri = build_otpauth_uri(SECRET, "TACC", "cproctor")
        assert uri.startswith("otpauth://totp/TACC%3Acproctor?")
        assert "issuer=TACC" in uri
        assert "digits=6" in uri and "period=30" in uri

    def test_secret_is_unpadded_base32(self):
        uri = build_otpauth_uri(SECRET, "TACC", "user")
        assert "=" not in uri.split("secret=")[1].split("&")[0]


class TestParse:
    def test_round_trip(self):
        uri = build_otpauth_uri(SECRET, "TACC", "cproctor", digits=8, period=60)
        parsed = parse_otpauth_uri(uri)
        assert parsed.secret == SECRET
        assert parsed.issuer == "TACC"
        assert parsed.account == "cproctor"
        assert parsed.digits == 8
        assert parsed.period == 60
        assert parsed.label == "TACC:cproctor"

    def test_defaults(self):
        parsed = parse_otpauth_uri("otpauth://totp/user?secret=GEZDGNBVGY3TQOJQGEZDGNBVGY3TQOJQ")
        assert parsed.digits == 6 and parsed.period == 30 and parsed.algorithm == "SHA1"

    def test_issuer_from_label_when_param_missing(self):
        parsed = parse_otpauth_uri(
            "otpauth://totp/Lab%3Abob?secret=GEZDGNBVGY3TQOJQGEZDGNBVGY3TQOJQ"
        )
        assert parsed.issuer == "Lab" and parsed.account == "bob"

    def test_wrong_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            parse_otpauth_uri("https://totp/x?secret=ABCD")

    def test_hotp_type_rejected(self):
        with pytest.raises(ValueError, match="type"):
            parse_otpauth_uri("otpauth://hotp/x?secret=GEZDGNBVGY3TQOJQGEZDGNBQ")

    def test_missing_secret_rejected(self):
        with pytest.raises(ValueError, match="secret"):
            parse_otpauth_uri("otpauth://totp/x?issuer=TACC")


class TestProvisioningRoundTrip:
    def test_qr_scan_seeds_working_device(self):
        """The complete soft-token pairing path: URI -> QR -> scan -> TOTP."""
        clock = SimulatedClock(1_000_000.0)
        uri = build_otpauth_uri(SECRET, "HPC-Center", "alice")
        qr = encode(uri, level="M")
        scanned = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        device = TOTPGenerator(secret=scanned.secret, clock=clock)
        reference = TOTPGenerator(secret=SECRET, clock=clock)
        assert device.current_code() == reference.current_code()

    @given(account=st.text(alphabet="abcdefghijklmnop0123456789_-", min_size=1, max_size=20))
    def test_account_names_survive(self, account):
        uri = build_otpauth_uri(SECRET, "X", account)
        assert parse_otpauth_uri(uri).account == account

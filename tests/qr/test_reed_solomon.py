"""Reed-Solomon codec: round trips, correction capacity, failure modes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.qr.galois import poly_eval, gf_pow
from repro.qr.reed_solomon import (
    RSDecodeError,
    rs_decode,
    rs_encode,
    rs_generator_poly,
)


class TestGeneratorPoly:
    def test_degree(self):
        for nsym in (7, 10, 16, 30):
            assert len(rs_generator_poly(nsym)) == nsym + 1

    def test_roots_are_powers_of_alpha(self):
        gen = list(rs_generator_poly(10))
        for i in range(10):
            assert poly_eval(gen, gf_pow(2, i)) == 0

    def test_monic(self):
        assert rs_generator_poly(13)[0] == 1


class TestEncode:
    def test_appends_nsym_parity(self):
        data = [1, 2, 3, 4]
        cw = rs_encode(data, 7)
        assert len(cw) == 11
        assert cw[:4] == data

    def test_codeword_is_multiple_of_generator(self):
        cw = rs_encode([10, 20, 30], 8)
        for i in range(8):
            assert poly_eval(cw, gf_pow(2, i)) == 0

    def test_nsym_must_be_positive(self):
        with pytest.raises(ValueError):
            rs_encode([1], 0)

    def test_qr_reference_block(self):
        # The "HELLO WORLD" version-1-M reference: the well-known example
        # codeword from the QR tutorial literature.
        data = [
            32, 91, 11, 120, 209, 114, 220, 77, 67, 64, 236, 17, 236, 17, 236, 17,
        ]
        cw = rs_encode(data, 10)
        assert cw[16:] == [196, 35, 39, 119, 235, 215, 231, 226, 93, 23]


class TestDecode:
    def test_clean_round_trip(self):
        data = list(range(30))
        assert rs_decode(rs_encode(data, 10), 10) == data

    @pytest.mark.parametrize("nerr", [1, 2, 3, 4, 5])
    def test_corrects_up_to_capacity(self, nerr):
        rng = random.Random(nerr)
        data = [rng.randrange(256) for _ in range(40)]
        cw = rs_encode(data, 10)
        positions = rng.sample(range(len(cw)), nerr)
        for pos in positions:
            cw[pos] ^= rng.randrange(1, 256)
        assert rs_decode(cw, 10) == data

    def test_beyond_capacity_raises(self):
        rng = random.Random(99)
        data = [rng.randrange(256) for _ in range(40)]
        cw = rs_encode(data, 10)
        for pos in rng.sample(range(len(cw)), 9):  # capacity is 5
            cw[pos] ^= rng.randrange(1, 256)
        with pytest.raises(RSDecodeError):
            rs_decode(cw, 10)

    def test_errors_in_parity_corrected(self):
        data = [5] * 20
        cw = rs_encode(data, 10)
        cw[-1] ^= 0xFF
        cw[-5] ^= 0x0F
        assert rs_decode(cw, 10) == data

    def test_codeword_too_short(self):
        with pytest.raises(ValueError):
            rs_decode([1, 2, 3], 10)

    @given(
        data=st.lists(st.integers(0, 255), min_size=1, max_size=60),
        nsym=st.sampled_from([7, 10, 13, 18, 22, 26, 30]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_error_patterns(self, data, nsym, seed):
        rng = random.Random(seed)
        cw = rs_encode(data, nsym)
        nerr = rng.randint(0, nsym // 2)
        for pos in rng.sample(range(len(cw)), nerr):
            cw[pos] ^= rng.randrange(1, 256)
        assert rs_decode(cw, nsym) == data

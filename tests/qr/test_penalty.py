"""The mask penalty rules (ISO 18004 N1-N4), tested in isolation."""

from repro.qr.encoder import _penalty, encode


def blank(size=21, value=0):
    return [[value] * size for _ in range(size)]


class TestRuleN1:
    def test_run_of_five_scores_three(self):
        matrix = blank()
        # Alternate everything so only our run contributes.
        for r in range(21):
            for c in range(21):
                matrix[r][c] = (r + c) % 2
        base = _penalty(matrix)
        for c in range(5):
            matrix[0][c] = 1
        assert _penalty(matrix) > base

    def test_longer_runs_score_more(self):
        a = blank()
        b = blank()
        for r in range(21):
            for c in range(21):
                a[r][c] = b[r][c] = (r + c) % 2
        for c in range(5):
            a[0][c] = 1
        for c in range(9):
            b[0][c] = 1
        assert _penalty(b) > _penalty(a)


class TestRuleN2:
    def test_2x2_blocks_penalized(self):
        checker = [[(r + c) % 2 for c in range(21)] for r in range(21)]
        base = _penalty(checker)
        checker[0][0] = checker[0][1] = checker[1][0] = checker[1][1] = 1
        assert _penalty(checker) > base


class TestRuleN3:
    def test_finder_like_pattern_costs_forty(self):
        matrix = [[(r + c) % 2 for c in range(21)] for r in range(21)]
        base = _penalty(matrix)
        pattern = [1, 0, 1, 1, 1, 0, 1, 0, 0, 0, 0]
        for i, bit in enumerate(pattern):
            matrix[4][i] = bit
        assert _penalty(matrix) >= base + 40 - 20  # other deltas are small


class TestRuleN4:
    def test_all_dark_worst(self):
        balanced = [[(r + c) % 2 for c in range(21)] for r in range(21)]
        dark = blank(value=1)
        assert _penalty(dark) > _penalty(balanced)

    def test_balance_minimizes_n4(self):
        # ~50% dark has N4 == 0; 100% dark has N4 == 100.
        dark = blank(value=1)
        light = blank(value=0)
        assert _penalty(dark) == _penalty(light)  # symmetric extremes


class TestMaskSelection:
    def test_chosen_mask_minimizes_penalty(self):
        payload = b"mask selection check"
        auto = encode(payload, level="M")
        scores = {}
        for mask in range(8):
            pinned = encode(payload, level="M", mask=mask)
            scores[mask] = _penalty(pinned.matrix)
        assert scores[auto.mask] == min(scores.values())

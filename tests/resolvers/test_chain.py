"""The resolver chain: realm routing, failover, circuits, the TTL cache."""

import pytest

from repro.common.clock import SimulatedClock
from repro.radius.health import CircuitState, FailoverPolicy
from repro.resolvers import (
    IdentityResolver,
    ResolvedIdentity,
    ResolverChain,
    ResolverUnavailableError,
)
from repro.resolvers.base import split_realm


class StubResolver(IdentityResolver):
    """An in-memory resolver with a kill switch, for chain surgery."""

    def __init__(self, name, users=(), down=False):
        super().__init__(name)
        self.users = {u: f"uid-{u}" for u in users}
        self.down = down

    def _lookup(self, username):
        if self.down:
            raise ResolverUnavailableError(f"resolver {self.name!r} is down")
        local, realm = split_realm(username)
        uid = self.users.get(local)
        if uid is None:
            return None
        return ResolvedIdentity(
            username=username, uid=uid, realm=realm, resolver=self.name
        )


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


def make_chain(clock, **kwargs):
    return ResolverChain(clock=clock, **kwargs)


class TestRegistration:
    def test_duplicate_name_rejected(self, clock):
        chain = make_chain(clock)
        chain.register(StubResolver("a"))
        with pytest.raises(ValueError, match="already registered"):
            chain.register(StubResolver("a"))

    def test_unknown_resolver_lookup_raises(self, clock):
        with pytest.raises(KeyError):
            make_chain(clock).resolver("ghost")

    def test_add_route_registers_new_and_reroutes_known(self, clock):
        chain = make_chain(clock)
        shared = StubResolver("fed", users=["alice"])
        chain.add_route("site-a", shared)
        chain.add_route("site-b", shared)
        assert chain.realms() == ["site-a", "site-b"]
        assert chain.resolve("alice@site-a").uid == "uid-alice"
        assert chain.resolve("alice@site-b").uid == "uid-alice"

    def test_invalid_cache_settings_rejected(self, clock):
        with pytest.raises(ValueError, match="TTLs must be positive"):
            make_chain(clock, cache_ttl=0.0)
        with pytest.raises(ValueError, match="capacity"):
            make_chain(clock, cache_capacity=0)


class TestRealmRouting:
    def test_bare_username_takes_default_route(self, clock):
        chain = make_chain(clock)
        chain.register(StubResolver("local", users=["alice"]))
        chain.register(StubResolver("partner", users=["alice"]), realms=("partner",))
        assert chain.resolve("alice").resolver == "local"
        assert chain.resolve("alice@partner").resolver == "partner"

    def test_unrouted_realm_fails_closed(self, clock):
        chain = make_chain(clock)
        chain.register(StubResolver("local", users=["alice"]))
        # alice exists on the default route, but the realm has no route:
        # the lookup must NOT fall through to some other source.
        assert chain.resolve("alice@nowhere") is None
        assert chain.unrouted == 1
        # ... and the miss is negative-cached.
        assert chain.resolve("alice@nowhere") is None
        assert chain.negative_hits == 1


class TestFailover:
    def test_unavailable_primary_fails_over_to_fallback(self, clock):
        chain = make_chain(clock)
        primary = chain.register(StubResolver("primary", users=["alice"], down=True))
        chain.register(StubResolver("fallback", users=["alice"]))
        found = chain.resolve("alice")
        assert found.resolver == "fallback"
        assert chain.failovers == 1
        assert primary.errors == 1

    def test_authoritative_miss_never_fails_over(self, clock):
        chain = make_chain(clock)
        chain.register(StubResolver("primary", users=[]))
        fallback = chain.register(StubResolver("fallback", users=["alice"]))
        # primary answered "no such user" — that is an answer, not an error.
        assert chain.resolve("alice") is None
        assert fallback.lookups == 0
        assert chain.failovers == 0

    def test_all_candidates_down_raises(self, clock):
        chain = make_chain(clock)
        chain.register(StubResolver("a", users=["alice"], down=True))
        chain.register(StubResolver("b", users=["alice"], down=True))
        with pytest.raises(ResolverUnavailableError, match="no resolver available"):
            chain.resolve("alice")

    def test_failures_demote_score_so_fallback_takes_traffic(self, clock):
        chain = make_chain(clock)
        primary = chain.register(StubResolver("primary", users=["alice"], down=True))
        chain.register(StubResolver("fallback", users=["alice"]))
        for _ in range(5):
            assert chain.resolve("alice").resolver == "fallback"
            chain.invalidate()
        snap = chain.snapshot()["resolvers"]
        assert snap["primary"]["score"] < snap["fallback"]["score"]
        # After the first failover the demoted primary sits behind the
        # healthy fallback in best-score-first order, so it eats exactly
        # one error and then stops seeing live traffic at all.
        assert primary.errors == 1
        assert chain.failovers == 1

    def test_untried_due_probe_is_not_consumed_by_enumeration(self, clock):
        """Enumerating candidates must not burn a probe: when two circuits
        are due and the first probe answers, the second resolver was never
        actually tried, so it must stay OPEN with its timer intact and be
        probed (and recover) on the very next lookup — not sit HALF_OPEN
        waiting out another backed-off interval."""
        policy = FailoverPolicy(failure_threshold=1, probe_interval=30.0)
        chain = make_chain(clock, policy=policy)
        a = chain.register(StubResolver("a", users=["alice"], down=True))
        b = chain.register(StubResolver("b", users=["alice"], down=True))
        with pytest.raises(ResolverUnavailableError):
            chain.resolve("alice")  # both circuits open
        clock.advance(31.0)  # both probes due
        a.down = False
        assert chain.resolve("alice").resolver == "a"  # a's probe answers
        assert b.lookups == 1  # b was not tried again
        snap = chain.snapshot()["resolvers"]
        assert snap["b"]["state"] == CircuitState.OPEN.value
        # b's probe is still due, so the moment it comes back it recovers
        # on the next lookup instead of waiting out a fresh interval.
        chain.invalidate()
        b.down = False
        assert chain.resolve("alice").resolver == "b"
        assert (
            chain.snapshot()["resolvers"]["b"]["state"]
            == CircuitState.CLOSED.value
        )

    def test_sole_resolver_circuit_opens_then_probe_recovers(self, clock):
        policy = FailoverPolicy(failure_threshold=3, probe_interval=30.0)
        chain = make_chain(clock, policy=policy)
        only = chain.register(StubResolver("only", users=["alice"], down=True))
        for _ in range(3):
            with pytest.raises(ResolverUnavailableError):
                chain.resolve("alice")
        assert chain.snapshot()["resolvers"]["only"]["state"] == CircuitState.OPEN.value
        # While the circuit is open and the probe timer is running the
        # resolver is not even tried.
        with pytest.raises(ResolverUnavailableError):
            chain.resolve("alice")
        assert only.errors == 3
        clock.advance(31.0)
        only.down = False
        assert chain.resolve("alice") is not None
        assert (
            chain.snapshot()["resolvers"]["only"]["state"]
            == CircuitState.CLOSED.value
        )


class TestCache:
    def test_repeat_lookup_is_a_cache_hit(self, clock):
        chain = make_chain(clock)
        backend = chain.register(StubResolver("a", users=["alice"]))
        chain.resolve("alice")
        chain.resolve("alice")
        assert chain.cache_hits == 1 and backend.lookups == 1

    def test_negative_entries_expire_faster(self, clock):
        chain = make_chain(clock, cache_ttl=300.0, negative_ttl=30.0)
        backend = chain.register(StubResolver("a", users=[]))
        assert chain.resolve("newbie") is None
        clock.advance(31.0)
        backend.users["newbie"] = "uid-newbie"
        assert chain.resolve("newbie") is not None  # fresh account visible

    def test_capacity_evicts_oldest_first(self, clock):
        chain = make_chain(clock, cache_capacity=2)
        backend = chain.register(StubResolver("a", users=["u1", "u2", "u3"]))
        chain.resolve("u1")
        chain.resolve("u2")
        chain.resolve("u3")  # evicts u1
        chain.resolve("u1")
        assert backend.lookups == 4
        assert chain.cache_hits == 0

    def test_invalidate_single_user_and_whole_cache(self, clock):
        chain = make_chain(clock)
        backend = chain.register(StubResolver("a", users=["u1", "u2"]))
        chain.resolve("u1")
        chain.resolve("u2")
        chain.invalidate("u1")
        chain.resolve("u1")
        chain.resolve("u2")
        assert backend.lookups == 3
        chain.invalidate()
        chain.resolve("u2")
        assert backend.lookups == 4


class TestSnapshot:
    def test_snapshot_shape(self, clock):
        chain = make_chain(clock)
        chain.register(StubResolver("a", users=["alice"]))
        chain.register(StubResolver("fed", users=["bob"]), realms=("partner",))
        chain.resolve("alice")
        snap = chain.snapshot()
        assert snap["configured"] is True
        assert snap["realms"] == {"(default)": ["a"], "partner": ["fed"]}
        assert snap["resolvers"]["a"]["state"] == "closed"
        assert snap["resolvers"]["a"]["stats"]["hits"] == 1
        assert snap["cache"]["entries"] == 1 and snap["cache"]["live"] == 1
        assert snap["lookups"] == 1 and snap["failovers"] == 0

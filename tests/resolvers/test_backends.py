"""Concrete resolver backends: directory, LDAP sim, flat file, cached."""

import pytest

from repro.common.clock import SimulatedClock
from repro.directory.identity import IdentityBackend
from repro.resolvers import (
    CachedRemoteResolver,
    DirectoryResolver,
    FlatFileResolver,
    LDAPSimResolver,
    ResolverUnavailableError,
    escape_filter_value,
)


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def identity():
    backend = IdentityBackend()
    backend.create_account("alice", "alice@example.edu")
    backend.create_account("bob", "bob@example.edu")
    return backend


class TestDirectoryResolver:
    def test_hit_carries_uid_and_resolver_name(self, identity):
        resolver = DirectoryResolver(identity)
        found = resolver.resolve("alice")
        assert found.uid == identity.get("alice").uid
        assert found.resolver == "directory"
        assert found.realm == "" and not found.federated

    def test_unknown_user_is_an_authoritative_miss(self, identity):
        resolver = DirectoryResolver(identity)
        assert resolver.resolve("mallory") is None
        assert resolver.stats() == {"lookups": 1, "hits": 0, "misses": 1, "errors": 0}

    def test_realm_suffix_is_split_off_before_lookup(self, identity):
        found = DirectoryResolver(identity).resolve("alice@center")
        assert found is not None
        assert found.username == "alice@center" and found.realm == "center"


class TestLDAPSimResolver:
    def test_resolves_via_subtree_search(self, identity, clock):
        resolver = LDAPSimResolver(identity.ldap, clock=clock)
        found = resolver.resolve("bob")
        assert found.uid == identity.get("bob").uid
        assert found.resolver == "ldap"

    def test_outage_raises_unavailable_not_miss(self, identity, clock):
        resolver = LDAPSimResolver(identity.ldap, clock=clock)
        resolver.set_outage(True)
        with pytest.raises(ResolverUnavailableError, match="down"):
            resolver.resolve("alice")
        assert resolver.stats()["errors"] == 1
        resolver.set_outage(False)
        assert resolver.resolve("alice") is not None

    def test_health_reports_outage_and_latency(self, identity, clock):
        resolver = LDAPSimResolver(identity.ldap, clock=clock, latency=0.25)
        assert resolver.health() == {"available": True, "latency_seconds": 0.25}
        resolver.set_outage(True)
        assert resolver.health()["available"] is False

    def test_injected_failures_burn_down_then_recover(self, identity, clock):
        resolver = LDAPSimResolver(identity.ldap, clock=clock)
        resolver.inject_failures(2)
        for _ in range(2):
            with pytest.raises(ResolverUnavailableError, match="timed out"):
                resolver.resolve("alice")
        assert resolver.resolve("alice") is not None

    def test_latency_spends_clock_time(self, identity, clock):
        resolver = LDAPSimResolver(identity.ldap, clock=clock, latency=1.5)
        before = clock.now()
        resolver.resolve("alice")
        assert clock.now() - before == pytest.approx(1.5)

    def test_wildcard_username_is_a_miss_not_identity_confusion(
        self, identity, clock
    ):
        # Unescaped, uid=* wildcard-matches the first posixAccount —
        # logging in as "*" would resolve to some arbitrary real user.
        resolver = LDAPSimResolver(identity.ldap, clock=clock)
        assert resolver.resolve("*") is None
        assert resolver.resolve("ali*") is None
        assert resolver.resolve("alice") is not None

    def test_filter_metacharacters_miss_instead_of_crashing(
        self, identity, clock
    ):
        # Unescaped parens broke parse_filter with an uncaught ValueError,
        # crashing the whole validate request.
        resolver = LDAPSimResolver(identity.ldap, clock=clock)
        for crafted in ["a)(uid=alice", "(", ")", "x\\y", "a\x00b"]:
            assert resolver.resolve(crafted) is None
        assert resolver.stats()["errors"] == 0

    def test_escape_filter_value_covers_rfc4515_metacharacters(self):
        assert escape_filter_value("alice") == "alice"
        assert escape_filter_value("*") == "\\2a"
        assert escape_filter_value("a(b)c\\d\x00") == "a\\28b\\29c\\5cd\\00"


class TestFlatFileResolver:
    def test_parses_simple_and_passwd_style_lines(self):
        resolver = FlatFileResolver(
            "# service accounts\n"
            "backup:9001\n"
            "\n"
            "daemon:x:9002:9002:Daemon:/var/empty:/sbin/nologin\n"
        )
        assert len(resolver) == 2
        assert resolver.resolve("backup").uid == "9001"
        assert resolver.resolve("daemon").uid == "9002"

    def test_malformed_line_rejected_at_construction(self):
        with pytest.raises(ValueError, match="malformed flat-file line"):
            FlatFileResolver("no-colon-here")

    def test_two_field_line_with_placeholder_uid_does_not_crash(self):
        # 'alice:x' used to raise an uncaught IndexError reaching for a
        # third field that is not there.
        resolver = FlatFileResolver("alice:x")
        assert resolver.resolve("alice").uid == "x"

    def test_passwd_lines_with_non_x_password_fields_map_the_real_uid(self):
        # Locked accounts ('*', '!') and hash-bearing rows are real
        # /etc/passwd shapes; the uid is the third field for all of them.
        resolver = FlatFileResolver(
            "locked:*:9100:9100::/var/empty:/sbin/nologin\n"
            "disabled:!:9101:9101::/var/empty:/sbin/nologin\n"
            "hashed:$6$salt$digest:9102:9102::/home/hashed:/bin/sh\n"
        )
        assert resolver.resolve("locked").uid == "9100"
        assert resolver.resolve("disabled").uid == "9101"
        assert resolver.resolve("hashed").uid == "9102"

    def test_numeric_second_field_is_the_uid_even_with_extra_fields(self):
        resolver = FlatFileResolver("backup:9001:comment:ignored")
        assert resolver.resolve("backup").uid == "9001"

    def test_add_and_miss(self):
        resolver = FlatFileResolver()
        resolver.add("ops", "42")
        assert resolver.resolve("ops").uid == "42"
        assert resolver.resolve("nobody") is None


class TestCachedRemoteResolver:
    def test_positive_hit_cached_for_ttl(self, identity, clock):
        inner = LDAPSimResolver(identity.ldap, clock=clock)
        cached = CachedRemoteResolver(inner, clock=clock, ttl=60.0)
        cached.resolve("alice")
        cached.resolve("alice")
        assert cached.cache_hits == 1 and inner.lookups == 1
        clock.advance(61.0)
        cached.resolve("alice")
        assert inner.lookups == 2

    def test_negative_ttl_shorter_so_new_accounts_appear(self, identity, clock):
        inner = DirectoryResolver(identity)
        cached = CachedRemoteResolver(inner, clock=clock, ttl=300.0, negative_ttl=10.0)
        assert cached.resolve("carol") is None
        assert cached.resolve("carol") is None  # served from negative cache
        assert inner.lookups == 1
        clock.advance(11.0)
        identity.create_account("carol", "carol@example.edu")
        assert cached.resolve("carol") is not None

    def test_unavailability_is_never_cached(self, identity, clock):
        inner = LDAPSimResolver(identity.ldap, clock=clock)
        cached = CachedRemoteResolver(inner, clock=clock)
        inner.set_outage(True)
        with pytest.raises(ResolverUnavailableError):
            cached.resolve("alice")
        inner.set_outage(False)
        assert cached.resolve("alice") is not None

    def test_invalidate_forces_refetch(self, identity, clock):
        inner = DirectoryResolver(identity)
        cached = CachedRemoteResolver(inner, clock=clock)
        cached.resolve("alice")
        cached.invalidate("alice")
        cached.resolve("alice")
        assert inner.lookups == 2

    def test_ttls_must_be_positive(self, identity):
        with pytest.raises(ValueError, match="TTLs must be positive"):
            CachedRemoteResolver(DirectoryResolver(identity), ttl=0.0)

"""Federated bearer assertions: issue, verify, replay-proof, resolver map."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.resolvers import (
    AssertionInvalid,
    AttestationIssuer,
    AttestationVerifier,
    FederatedResolver,
)
from repro.resolvers.federation import split_assertion_code

KEY = b"0123456789abcdef0123456789abcdef"
OTHER_KEY = b"fedcba9876543210fedcba9876543210"


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def issuer(clock):
    return AttestationIssuer(
        "partner.edu", KEY, clock=clock, rng=random.Random(7)
    )


@pytest.fixture
def verifier(clock):
    v = AttestationVerifier(clock=clock)
    v.trust("partner.edu", KEY)
    return v


class TestIssuer:
    def test_assertion_format(self, issuer):
        assertion = issuer.issue("alice")
        prefix, body, signature = assertion.split(".")
        assert prefix == "FED1"
        assert len(signature) == 64 and int(signature, 16) >= 0
        assert issuer.issued == 1

    def test_short_key_rejected(self, clock):
        with pytest.raises(ValueError, match=">= 16 bytes"):
            AttestationIssuer("partner.edu", b"short", clock=clock)

    def test_bad_settings_rejected(self, clock):
        with pytest.raises(ValueError, match="non-empty"):
            AttestationIssuer("", KEY, clock=clock)
        with pytest.raises(ValueError, match="TTL"):
            AttestationIssuer("partner.edu", KEY, clock=clock, ttl=0)


class TestVerifier:
    def test_round_trip_returns_payload(self, issuer, verifier):
        payload = verifier.verify(issuer.issue("alice"))
        assert payload["sub"] == "alice"
        assert payload["site"] == "partner.edu"
        assert payload["aud"] == "hpc-center"
        assert verifier.verified == 1 and verifier.rejected == 0

    def test_replay_blocked_exactly_once_used(self, issuer, verifier):
        assertion = issuer.issue("alice")
        verifier.verify(assertion)
        with pytest.raises(AssertionInvalid, match="replayed"):
            verifier.verify(assertion)
        assert verifier.nonces.replays_blocked == 1

    def test_expired_assertion_rejected(self, issuer, verifier, clock):
        assertion = issuer.issue("alice", ttl=60.0)
        clock.advance(61.0)
        with pytest.raises(AssertionInvalid, match="expired"):
            verifier.verify(assertion)

    def test_forged_signature_rejected(self, clock, verifier):
        rogue = AttestationIssuer(
            "partner.edu", OTHER_KEY, clock=clock, rng=random.Random(8)
        )
        with pytest.raises(AssertionInvalid, match="signature invalid"):
            verifier.verify(rogue.issue("alice"))

    def test_unknown_home_site_rejected(self, clock, verifier):
        stranger = AttestationIssuer(
            "stranger.org", KEY, clock=clock, rng=random.Random(9)
        )
        with pytest.raises(AssertionInvalid, match="unknown home site"):
            verifier.verify(stranger.issue("alice"))

    def test_audience_mismatch_rejected(self, issuer, verifier):
        with pytest.raises(AssertionInvalid, match="audience mismatch"):
            verifier.verify(issuer.issue("alice", audience="some-other-center"))

    def test_malformed_assertion_rejected(self, verifier):
        for junk in ("", "FED1", "FED1.!!!.sig", "TOK9.e30.00", "a.b.c.d.e"):
            with pytest.raises(AssertionInvalid, match="malformed"):
                verifier.verify(junk)

    def test_tampered_body_fails_signature_not_nonce(self, issuer, verifier):
        """The nonce burns *last*: a tampered copy of a live assertion
        must not consume the victim's nonce."""
        assertion = issuer.issue("alice")
        prefix, body, signature = assertion.split(".")
        tampered = f"{prefix}.{body[:-2]}AA.{signature}"
        with pytest.raises(AssertionInvalid):
            verifier.verify(tampered)
        # The genuine assertion still validates: its nonce was untouched.
        assert verifier.verify(assertion)["sub"] == "alice"

    def test_key_rotation_invalidates_old_issuer(self, issuer, verifier):
        verifier.trust("partner.edu", OTHER_KEY)
        with pytest.raises(AssertionInvalid, match="signature invalid"):
            verifier.verify(issuer.issue("alice"))

    def test_trusted_sites_listing(self, verifier):
        verifier.trust("other.org", OTHER_KEY)
        assert verifier.trusted_sites() == ["other.org", "partner.edu"]


class TestStepUpCodeSplit:
    def test_bare_assertion_passes_through(self, issuer):
        assertion = issuer.issue("alice")
        assert split_assertion_code(assertion) == (assertion, None)

    def test_fourth_dot_part_is_the_step_up_code(self, issuer):
        assertion = issuer.issue("alice")
        assert split_assertion_code(f"{assertion}.123456") == (assertion, "123456")


class TestFederatedResolver:
    def test_maps_principal_to_local_uid(self):
        resolver = FederatedResolver()
        resolver.map("alice@partner.edu", "uid0042")
        found = resolver.resolve("alice@partner.edu")
        assert found.uid == "uid0042"
        assert found.federated is True
        assert found.home_site == "partner.edu" and found.realm == "partner.edu"

    def test_principal_needs_a_realm(self):
        with pytest.raises(ValueError, match="needs a realm"):
            FederatedResolver().map("alice", "uid0042")

    def test_unmap_turns_hit_into_miss(self):
        resolver = FederatedResolver()
        resolver.map("alice@partner.edu", "uid0042")
        resolver.unmap("alice@partner.edu")
        assert resolver.resolve("alice@partner.edu") is None
        assert len(resolver) == 0

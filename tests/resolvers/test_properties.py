"""Property-based contracts of the resolver chain (Hypothesis).

Three invariants the ISSUE pins, for any realm topology and any failure
pattern an operator (or chaos plan) can produce:

* **routing is exclusive** — a username resolves through exactly one
  realm route, or fails closed; no lookup ever crosses realms;
* **negative-cache TTL** — an authoritative miss is served from cache
  until ``negative_ttl`` elapses, and refetched right after;
* **failover/recovery ordering** — the EWMA score keeps a once-failed
  primary demoted below the healthy fallback until the primary actually
  answers again, and recovery never routes through the dead resolver.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimulatedClock
from repro.resolvers import IdentityResolver, ResolvedIdentity, ResolverChain
from repro.resolvers.base import ResolverUnavailableError, split_realm


class TableResolver(IdentityResolver):
    """Resolves a fixed username set; records what it was asked."""

    def __init__(self, name, users, down=False):
        super().__init__(name)
        self.users = set(users)
        self.down = down
        self.asked = []

    def _lookup(self, username):
        self.asked.append(username)
        if self.down:
            raise ResolverUnavailableError(f"resolver {self.name!r} is down")
        local, realm = split_realm(username)
        if local not in self.users:
            return None
        return ResolvedIdentity(
            username=username, uid=f"uid-{local}", realm=realm, resolver=self.name
        )


def fresh_clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


local_name = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
).filter(lambda s: "@" not in s)
realm_name = st.sampled_from(["", "partner", "site-b", "nowhere"])


@settings(max_examples=60, deadline=None)
@given(
    routed=st.dictionaries(
        st.sampled_from(["", "partner", "site-b"]),
        st.sets(local_name, min_size=0, max_size=5),
        min_size=1,
        max_size=3,
    ),
    local=local_name,
    realm=realm_name,
)
def test_every_lookup_routes_to_exactly_one_realm_or_fails_closed(
    routed, local, realm
):
    chain = ResolverChain(clock=fresh_clock())
    backends = {
        r: chain.register(
            TableResolver(f"res-{r or 'default'}", users), realms=(r,)
        )
        for r, users in routed.items()
    }
    username = f"{local}@{realm}" if realm else local
    found = chain.resolve(username)
    if realm not in routed:
        # Unrouted realm: fail closed, and nobody was consulted.
        assert found is None
        assert all(not b.asked for b in backends.values())
    else:
        # Exactly the owning realm's resolver was consulted — never a
        # sibling realm's, even when it knows the same local name.
        for r, backend in backends.items():
            assert bool(backend.asked) == (r == realm)
        if local in routed[realm]:
            assert found is not None and found.resolver == backends[realm].name
        else:
            assert found is None


@settings(max_examples=40, deadline=None)
@given(
    negative_ttl=st.floats(min_value=0.5, max_value=120.0, allow_nan=False),
    probe_offsets=st.lists(
        st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
)
def test_negative_cache_serves_misses_until_ttl_then_refetches(
    negative_ttl, probe_offsets
):
    clock = fresh_clock()
    chain = ResolverChain(clock=clock, negative_ttl=negative_ttl)
    backend = chain.register(TableResolver("only", users=[]))
    assert chain.resolve("ghost") is None
    assert backend.lookups == 1
    # Any number of probes strictly inside the TTL window hit the
    # negative cache without consulting the backend.
    base = clock.now()
    for offset in sorted(probe_offsets):
        target = base + offset * negative_ttl
        if target > clock.now():
            clock.advance(target - clock.now())
        assert chain.resolve("ghost") is None
    assert backend.lookups == 1
    assert chain.negative_hits == len(probe_offsets)
    # At/after expiry the miss is re-asked — a just-created account with
    # this name would now be visible.
    backend.users.add("ghost")
    clock.advance(base + negative_ttl + 0.001 - clock.now())
    assert chain.resolve("ghost") is not None
    assert backend.lookups == 2


@settings(max_examples=40, deadline=None)
@given(
    outage_lookups=st.integers(min_value=1, max_value=6),
    healthy_lookups=st.integers(min_value=1, max_value=6),
)
def test_failover_demotes_primary_until_it_answers_again(
    outage_lookups, healthy_lookups
):
    clock = fresh_clock()
    chain = ResolverChain(clock=clock)
    primary = chain.register(TableResolver("primary", users=["alice"], down=True))
    fallback = chain.register(TableResolver("fallback", users=["alice"]))

    def score(name):
        return chain.snapshot()["resolvers"][name]["score"]

    for _ in range(outage_lookups):
        assert chain.resolve("alice").resolver == "fallback"
        chain.invalidate()
    assert score("primary") < score("fallback")
    # Recovery ordering: while demoted, the primary sees no traffic even
    # after it silently comes back — the healthy fallback keeps serving.
    primary.down = False
    asked_before = len(primary.asked)
    for _ in range(healthy_lookups):
        assert chain.resolve("alice").resolver == "fallback"
        chain.invalidate()
    assert len(primary.asked) == asked_before
    assert score("primary") < score("fallback")
    # Only once the fallback itself degrades does the primary get asked
    # again — and its first success starts re-promoting its score.
    fallback.down = True
    demoted = score("primary")
    assert chain.resolve("alice").resolver == "primary"
    assert score("primary") > demoted

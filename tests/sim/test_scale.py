"""The vectorised scaled rollout: determinism, resume, figure shapes."""

import pytest

from repro.sim.scale import ScaleConfig, ScaledRollout, simulate


def run(users=20_000, days=14, seed=99):
    return simulate(users, days, seed)


class TestConfig:
    def test_phase_days_are_ordered(self):
        cfg = ScaleConfig(users=1000, days=14)
        assert 0 <= cfg.announcement_day <= cfg.phase2_day <= cfg.phase3_day <= 14

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            ScaleConfig(users=10)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            ScaleConfig(users=1000, days=0)

    def test_rejects_unordered_fractions(self):
        with pytest.raises(ValueError):
            ScaleConfig(users=1000, phase2_frac=0.9, phase3_frac=0.5)


class TestDeterminism:
    def test_same_seed_byte_identical_digest(self):
        assert run().digest() == run().digest()

    def test_different_seed_differs(self):
        assert run(seed=99).digest() != run(seed=100).digest()

    def test_resumed_run_matches_continuous(self):
        continuous = run(users=1000)
        resumed = ScaledRollout(ScaleConfig(users=1000, days=14, seed=99))
        resumed.run(until_day=5)
        resumed.run(until_day=10)
        resumed.run()
        assert resumed.digest() == continuous.digest()
        assert (
            resumed.metrics.unique_mfa_users == continuous.metrics.unique_mfa_users
        ).all()

    def test_population_size_changes_digest(self):
        assert run(users=1000).digest() != run(users=2000).digest()


class TestShapes:
    def test_fig3_adoption_ramps_across_phases(self):
        rollout = run()
        m, cfg = rollout.metrics, rollout.config
        pre = m.unique_mfa_users[: cfg.phase2_day].mean()
        post = m.unique_mfa_users[cfg.phase3_day :].mean()
        assert post > 2 * pre  # mandatory MFA multiplies daily MFA users

    def test_fig4_nonmfa_traffic_declines(self):
        rollout = run()
        m, cfg = rollout.metrics, rollout.config
        early = m.external_nonmfa[: cfg.announcement_day + 2].mean()
        late = m.external_nonmfa[cfg.phase3_day :].mean()
        assert late < early  # exempt/automated remainder, not the old bulk
        assert late > 0  # but never zero: exempt service traffic persists

    def test_fig6_pairing_spikes_at_phase_boundaries(self):
        rollout = run()
        m, cfg = rollout.metrics, rollout.config
        top = {
            int(day)
            for day, _ in [
                (m.new_pairings.argsort()[::-1][k], None) for k in range(3)
            ]
        }
        # The countdown reaction (day after phase 2) and the deadline are
        # the rollout's biggest pairing days, as in the paper's Figure 6.
        assert cfg.phase2_day + 1 in top or cfg.phase3_day in top

    def test_most_eligible_users_end_paired(self):
        rollout = run()
        assert rollout.paired_fraction() > 0.5

    def test_service_accounts_never_pair(self):
        rollout = run()
        assert not (rollout.paired & rollout.is_service).any()

    def test_tickets_follow_the_rollout(self):
        m = run().metrics
        assert m.mfa_tickets.sum() > 0
        assert m.other_tickets.sum() > m.mfa_tickets.sum()


class TestEventLog:
    def test_one_day_event_per_day_plus_phases(self):
        rollout = run(users=1000)
        kinds = [event["kind"] for event in rollout.log.events]
        assert kinds.count("day") == rollout.config.days
        assert kinds.count("phase") == 3

    def test_summary_carries_digest_and_totals(self):
        rollout = run(users=1000)
        summary = rollout.summary()
        assert summary["digest"] == rollout.digest()
        assert summary["users"] == 1000
        assert summary["new_pairings_total"] > 0

"""Population generation and daily-behaviour models."""

import random
from datetime import date

import pytest

from repro.directory.identity import AccountClass
from repro.sim.behavior import (
    AdaptationModel,
    AdoptionModel,
    activity_factor,
    automated_connections,
    interactive_sessions,
    logs_in_today,
)
from repro.sim.population import Population, UserProfile


@pytest.fixture(scope="module")
def population():
    return Population(2000, seed=1)


class TestPopulation:
    def test_size(self, population):
        assert len(population) == 2000

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Population(10)

    def test_deterministic(self):
        a = Population(200, seed=9)
        b = Population(200, seed=9)
        assert [u.username for u in a.users] == [u.username for u in b.users]
        assert [u.login_rate for u in a.users] == [u.login_rate for u in b.users]

    def test_class_mix_plausible(self, population):
        by_class = population.by_class()
        total = len(population)
        assert len(by_class[AccountClass.INDIVIDUAL]) / total > 0.9
        assert 0.002 <= len(by_class[AccountClass.STAFF]) / total <= 0.03
        assert AccountClass.TRAINING in by_class

    def test_training_uses_static(self, population):
        for user in population.by_class()[AccountClass.TRAINING]:
            assert user.device_preference == "training"

    def test_service_accounts_automated(self, population):
        for user in population.service_accounts():
            assert user.automated
            assert user.automated_daily_connections >= 50
            assert user.device_preference == "none"

    def test_device_preferences_match_table1(self, population):
        """Non-training preferences should track Table 1's proportions."""
        prefs = [
            u.device_preference
            for u in population.users
            if u.device_preference in ("soft", "sms", "hard")
        ]
        soft = prefs.count("soft") / len(prefs)
        sms = prefs.count("sms") / len(prefs)
        hard = prefs.count("hard") / len(prefs)
        assert 0.50 <= soft <= 0.65
        assert 0.35 <= sms <= 0.48
        assert 0.002 <= hard <= 0.04

    def test_minority_automates(self, population):
        individuals = population.by_class()[AccountClass.INDIVIDUAL]
        automated = [u for u in individuals if u.automated]
        assert 0.01 <= len(automated) / len(individuals) <= 0.08

    def test_staff_threshold_positive(self, population):
        assert population.staff_threshold_activity() > 0


class TestCalendar:
    def test_weekday_full_activity(self):
        assert activity_factor(date(2016, 9, 14)) == 1.0  # a Wednesday

    def test_weekend_reduced(self):
        assert activity_factor(date(2016, 9, 17)) < 1.0  # a Saturday

    def test_holiday_reduced(self):
        assert activity_factor(date(2016, 12, 25)) < activity_factor(date(2016, 12, 1))

    def test_holiday_weekend_compounds(self):
        assert activity_factor(date(2016, 12, 24)) < activity_factor(date(2016, 12, 21))


def make_user(**overrides):
    defaults = dict(
        username="u", account_class=AccountClass.INDIVIDUAL,
        device_preference="soft", login_rate=0.5, sessions_per_active_day=3.0,
        external_fraction=0.8, automated=False, automated_daily_connections=0.0,
        eagerness=0.5,
    )
    defaults.update(overrides)
    return UserProfile(**defaults)


class TestBehavior:
    def test_login_rate_respected(self):
        rng = random.Random(1)
        user = make_user(login_rate=0.5)
        d = date(2016, 9, 14)
        active = sum(1 for _ in range(2000) if logs_in_today(user, d, rng))
        assert 900 <= active <= 1100

    def test_interactive_sessions_at_least_one(self):
        rng = random.Random(2)
        user = make_user(sessions_per_active_day=2.0)
        for _ in range(100):
            assert interactive_sessions(user, rng) >= 1

    def test_automated_connections_zero_for_manual(self):
        user = make_user(automated=False)
        assert automated_connections(user, date(2016, 9, 14), random.Random(3)) == 0

    def test_automated_volume_near_mean(self):
        rng = random.Random(4)
        user = make_user(automated=True, automated_daily_connections=100.0)
        total = sum(
            automated_connections(user, date(2016, 9, 14), rng) for _ in range(200)
        )
        assert 18000 <= total <= 22000


class TestAdoptionModel:
    @pytest.fixture
    def model(self):
        return AdoptionModel(announcement_day=9, phase2_day=36, phase3_day=64)

    def test_no_hazard_before_announcement(self, model):
        assert model.voluntary_hazard(make_user(), 5) == 0.0

    def test_hazard_peaks_at_announcement(self, model):
        user = make_user(eagerness=1.0)
        assert model.voluntary_hazard(user, 9) > model.voluntary_hazard(user, 30)

    def test_hazard_scales_with_eagerness(self, model):
        eager = make_user(eagerness=1.0)
        reluctant = make_user(eagerness=0.1)
        assert model.voluntary_hazard(eager, 10) > model.voluntary_hazard(reluctant, 10)

    def test_countdown_first_encounter_more_persuasive(self, model):
        rng = random.Random(5)
        user = make_user(eagerness=0.5)
        first = sum(
            1 for _ in range(1000) if model.pairs_after_countdown(user, 1, rng)
        )
        repeat = sum(
            1 for _ in range(1000) if model.pairs_after_countdown(user, 3, rng)
        )
        assert first > repeat

    def test_phase2_announcement_response(self, model):
        rng = random.Random(6)
        eager = make_user(eagerness=1.0)
        rate = sum(
            1 for _ in range(1000)
            if model.pairs_after_phase2_announcement(eager, rng)
        )
        assert 120 <= rate <= 280  # ~ phase2_announce_prob


class TestAdaptationModel:
    def test_adaptation_day_bounded(self):
        model = AdaptationModel(outreach_day=4, phase2_day=36, phase3_day=64)
        rng = random.Random(7)
        user = make_user(automated=True)
        for _ in range(200):
            day = model.sample_adaptation_day(user, rng)
            assert 4 <= day <= 64 + 14

    def test_split_sums_to_one(self):
        model = AdaptationModel(outreach_day=4, phase2_day=36, phase3_day=64)
        rng = random.Random(8)
        for _ in range(100):
            internal, mux, variance = model.adapted_split(rng)
            assert internal + mux + variance == pytest.approx(1.0)
            assert internal > 0 and mux > 0 and variance >= 0

"""Parallel seed sweeps: worker correctness, pool equivalence, aggregation."""

from repro.sim.sweep import SeedSummary, aggregate, run_sweep, summarize
from repro.sim import RolloutConfig, RolloutSimulation


class TestSummarize:
    def test_summary_fields(self):
        sim = RolloutSimulation(
            RolloutConfig(population_size=300, seed=7, real_login_fraction=0.0)
        )
        summary = summarize(sim.run(), seed=7, population=300)
        assert summary.seed == 7
        assert 0 < summary.predeadline_share <= 1
        assert 0 <= summary.ticket_share_2016 <= 1
        assert summary.soft_percent > summary.hard_percent
        assert 0 < summary.holiday_dip < 1


class TestSweep:
    def test_inline_sweep(self):
        summaries = run_sweep([11, 22], population=300, processes=1)
        assert [s.seed for s in summaries] == [11, 22]
        assert summaries[0] != summaries[1]

    def test_parallel_matches_inline(self):
        """Pool execution must be bit-identical to inline execution."""
        inline = run_sweep([5, 6], population=300, processes=1)
        parallel = run_sweep([5, 6], population=300, processes=2)
        assert inline == parallel

    def test_single_seed_runs_inline(self):
        summaries = run_sweep([3], population=300)
        assert len(summaries) == 1


class TestAggregate:
    def test_aggregate_shape(self):
        summaries = run_sweep([1, 2, 3], population=300, processes=1)
        stats = aggregate(summaries)
        assert "sep7_rank" in stats and "soft_percent" in stats
        for entry in stats.values():
            assert entry["min"] <= entry["mean"] <= entry["max"]

    def test_empty(self):
        assert aggregate([]) == {}

    def test_paper_shapes_hold_across_seeds(self):
        """The robustness claim itself, at small scale."""
        summaries = run_sweep([101, 202, 303], population=400, processes=1)
        for s in summaries:
            assert s.sep7_rank <= 3, s.seed
            assert s.predeadline_share > 0.5, s.seed
            assert s.phase2_traffic_drop > 0.1, s.seed
            assert s.soft_percent > s.sms_percent > s.hard_percent, s.seed

    def test_summary_is_picklable(self):
        import pickle

        summary = SeedSummary(
            seed=1, population=10, sep7_rank=1, oct4_rank=2,
            predeadline_share=0.7, ticket_share_2016=0.08,
            ticket_share_2017=0.02, phase2_traffic_drop=0.4,
            soft_percent=55.0, sms_percent=40.0, training_percent=3.0,
            hard_percent=1.5, holiday_dip=0.3,
        )
        assert pickle.loads(pickle.dumps(summary)) == summary

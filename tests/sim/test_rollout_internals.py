"""Rollout internals: new-account arrivals, device fallbacks, phases."""

from datetime import date

import pytest

from repro.sim import RolloutConfig, RolloutSimulation
from repro.sim.behavior import SPRING_SEMESTER


@pytest.fixture(scope="module")
def sim():
    simulation = RolloutSimulation(
        RolloutConfig(population_size=400, seed=17, real_login_fraction=0.0)
    )
    simulation.run()
    return simulation


class TestProvisioning:
    def test_service_accounts_exempted(self, sim):
        for user in sim.population.service_accounts():
            assert sim.system.acl.check(user.username, "8.8.8.8"), user.username

    def test_regular_accounts_not_exempted(self, sim):
        regular = next(
            u for u in sim.population.users
            if not u.is_service_account and u.username.startswith("in")
        )
        assert not sim.system.acl.check(regular.username, "8.8.8.8")

    def test_hard_batch_sized_for_population(self, sim):
        hard_pref = sum(
            1 for u in sim.population.users if u.device_preference == "hard"
        )
        # The batch was provisioned with slack; nobody was left fobless.
        assert sim.metrics.pairing_types.get("hard", 0) >= 1
        assert len(sim._hard_batch) >= hard_pref

    def test_all_accounts_exist_in_identity(self, sim):
        for user in sim.population.users:
            assert user.username in sim.center.identity


class TestNewAccounts:
    def test_new_users_arrive(self, sim):
        newcomers = [
            u for u in sim.population.users if u.username.startswith("newuser")
        ]
        assert newcomers

    def test_late_signups_pair_at_registration(self, sim):
        """From late August "any new users ... began receiving instruction
        on how to pair an MFA device" — late arrivals are all paired."""
        from repro.directory.identity import PairingStatus

        newcomers = [
            u for u in sim.population.users if u.username.startswith("newuser")
        ]
        paired = sum(
            1
            for u in newcomers
            if sim.center.identity.get(u.username).pairing_status
            is not PairingStatus.UNPAIRED
        )
        assert paired / len(newcomers) > 0.8

    def test_spring_semester_arrival_uptick(self, sim):
        m = sim.metrics
        december = m.mean_over(m.new_pairings, date(2016, 12, 5), date(2017, 1, 10))
        spring = m.mean_over(
            m.new_pairings, SPRING_SEMESTER, date(2017, 2, 7)
        )
        assert spring > december


class TestPhaseMachinery:
    def test_final_mode_full(self, sim):
        assert sim.system.mode == "full"

    def test_mass_emails_sent_at_milestones(self, sim):
        """Three campaign-wide broadcasts: announcement, phase 2, phase 3."""
        assert sim.mailer.sent_count >= 3 * len(sim.population.users) * 0.9
        # A specific user's inbox holds the three announcements.
        sample = sim.population.users[0].username
        email = sim.center.identity.get(sample).email
        subjects = [m.subject for m in sim.mailer.inbox(email)]
        assert any("coming" in s for s in subjects)
        assert any("countdown" in s for s in subjects)
        assert any("mandatory" in s for s in subjects)

    def test_training_pairings_spread(self, sim):
        """Training accounts pair at their workshops, not in one burst."""
        training_days = [
            state.workshop_day
            for state in sim._states.values()
            if state.workshop_day is not None
        ]
        if len(training_days) >= 3:
            assert len(set(training_days)) >= 3

    def test_unpaired_remainder_is_small_and_inactive(self, sim):
        """Whoever never paired is a user who effectively never logs in."""
        from repro.directory.identity import AccountClass, PairingStatus

        stragglers = [
            state.profile
            for state in sim._states.values()
            if not state.paired
            and not state.profile.is_service_account
            and state.profile.account_class is not AccountClass.TRAINING
        ]
        share = len(stragglers) / len(sim.population.users)
        assert share < 0.25
        if stragglers:
            mean_rate = sum(u.login_rate for u in stragglers) / len(stragglers)
            active_mean = sum(u.login_rate for u in sim.population.users) / len(
                sim.population.users
            )
            assert mean_rate < active_mean

"""Adversarial campaigns: determinism, invariants, and deterrence shape.

The blocked-rate table has a known shape from the MFA-effectiveness
literature (arXiv 2305.00945): stuffing is ~fully blocked by any real
token, real-time phishing partially defeats code entry, SIM swap fully
defeats SMS, and the unpaired tail is the single-factor success channel.
These tests pin that shape, the two adversarial invariants, and that two
runs of the same config are equal down to the event-log digest.
"""

import pytest

from repro.sim.attackers import (
    SCENARIOS,
    AttackConfig,
    AttackSimulation,
    run_attack,
)


def campaign(scenario, seed=101, accounts=10_000, **overrides):
    return AttackConfig(
        scenario=scenario, seed=seed, accounts=accounts, **overrides
    )


@pytest.fixture(scope="module")
def reports():
    """One run per scenario at 10k accounts, shared across the module."""
    return {s: run_attack(campaign(s)) for s in SCENARIOS}


class TestConfigValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            AttackConfig(scenario="ddos")

    def test_population_floor(self):
        with pytest.raises(ValueError, match="at least 100 accounts"):
            AttackConfig(accounts=99)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            AttackConfig(compromised_fraction=0.0)
        with pytest.raises(ValueError):
            AttackConfig(honeytoken_fraction=0.2)
        with pytest.raises(ValueError):
            AttackConfig(victim_consumes=1.5)

    def test_duration_floor(self):
        with pytest.raises(ValueError, match="one virtual hour"):
            AttackConfig(duration_seconds=60.0)


class TestDeterminism:
    def test_same_config_same_summary_and_digest(self):
        cfg = campaign("stuffing")
        a = run_attack(cfg).summary()
        b = run_attack(cfg).summary()
        assert a == b
        assert a["digest"] == b["digest"]

    def test_different_seeds_differ(self):
        a = run_attack(campaign("stuffing", seed=101)).summary()
        b = run_attack(campaign("stuffing", seed=202)).summary()
        assert a["digest"] != b["digest"]

    def test_population_assignment_shared_across_scenarios(self, reports):
        populations = {s: r.summary()["population"] for s, r in reports.items()}
        # The federated scenario deploys the soft-token cohort as federated
        # pairings — same underlying assignment, one kind relabeled.
        federated = populations.pop("federated", None)
        assert len({tuple(sorted(p.items())) for p in populations.values()}) == 1
        if federated is not None:
            baseline = populations["stuffing"]
            # The soft cohort left the "totp" reporting group wholesale...
            assert federated["federated"] + federated["totp"] == baseline["totp"]
            assert federated["federated"] > 0
            # ...and every other group is untouched.
            for group, count in baseline.items():
                if group != "totp":
                    assert federated[group] == count

    def test_no_wall_clock_in_summary(self, reports):
        summary = reports["stuffing"].summary()
        flat = repr(summary)
        assert "2026" not in flat  # no real-world dates leak in
        for key in summary:
            assert "time" not in key and "date" not in key


class TestInvariants:
    """The two adversarial invariants hold for every shipped scenario."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_zero_violations(self, reports, scenario):
        assert reports[scenario].violations() == []

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_every_success_was_flagged(self, reports, scenario):
        for a in reports[scenario].attempts:
            if a["ok"]:
                assert a["flagged"], a

    def test_honey_uses_equal_alarms(self, reports):
        report = reports["stuffing"]
        uses = sum(
            1
            for a in report.attempts
            if a["group"] == "honeytoken" and a["blocked_by"] != "no_code"
        )
        assert uses > 0
        assert uses == report.honeytoken_alarms


class TestDeterrenceShape:
    """Blocked rates match the literature's qualitative findings."""

    def test_stuffing_blocked_by_every_real_token(self, reports):
        rates = reports["stuffing"].by_token_type()
        attacked = [g for g in ("totp", "sms", "hotp", "static") if g in rates]
        assert attacked  # at least some real tokens were in the dump
        for group in attacked:
            assert rates[group]["blocked_rate"] == 1.0, group

    def test_stuffing_unpaired_is_the_open_channel(self, reports):
        rates = reports["stuffing"].by_token_type()
        # Single-factor accounts fall to stolen credentials unless the
        # risk stage denies outright.
        assert rates["none"]["succeeded"] + rates["none"]["blocked"] == rates[
            "none"
        ]["attempts"]
        summary = reports["stuffing"].summary()
        assert set(summary["success_channels"]) <= {"password_only", "stolen_seed"}

    def test_phishing_partially_defeats_totp(self, reports):
        stuffing = reports["stuffing"].by_token_type()["totp"]["blocked_rate"]
        phishing = reports["phishing"].by_token_type()["totp"]["blocked_rate"]
        assert phishing < stuffing
        assert 0.0 < phishing < 1.0

    def test_phishing_never_breaks_static_codes_twice(self, reports):
        # A phished static code is simply the credential: relaying it
        # succeeds unless the victim's own login tripped replay defenses.
        rates = reports["phishing"].by_token_type()
        assert rates["static"]["blocked_rate"] < 1.0

    def test_simswap_defeats_sms(self, reports):
        rates = reports["simswap"].by_token_type()
        assert rates["sms"]["blocked_rate"] < 0.2
        # Non-SMS targets fall back to stuffing, so sim_swap successes can
        # only come from accounts whose number the attacker ported.
        for a in reports["simswap"].attempts:
            if a["channel"] == "sim_swap":
                assert a["group"] == "sms"

    def test_honeytokens_catch_their_attackers(self, reports):
        for scenario in SCENARIOS:
            summary = reports[scenario].summary()
            assert summary["honeytoken"]["uses"] == summary["honeytoken"]["alarms"]
            assert summary["honeytoken"]["uses"] > 0

    def test_legit_traffic_unharmed(self, reports):
        # Deterrence must not come from breaking the real users.
        summary = reports["stuffing"].summary()
        assert summary["legit"]["logins"] > 0
        assert summary["legit"]["succeeded"] == summary["legit"]["logins"]


class TestReportMechanics:
    def test_summary_counts_are_consistent(self, reports):
        summary = reports["mixed"].summary()
        blocked = sum(summary["blocked_by"].values())
        succeeded = sum(summary["success_channels"].values())
        assert blocked + succeeded == summary["attempts"]
        table = summary["by_token_type"]
        assert sum(r["attempts"] for r in table.values()) == summary["attempts"]

    def test_risk_snapshot_travels_with_report(self, reports):
        risk = reports["stuffing"].summary()["risk"]
        assert risk["assessed"] > 0
        assert risk["flagged_users"] > 0
        assert risk["step_up_threshold"] <= risk["deny_threshold"]

    def test_simulation_enrolls_only_targets(self):
        sim = AttackSimulation(campaign("stuffing", accounts=2000))
        enrolled = sum(sim.server.token_count_by_type().values())
        paired_targets = sum(1 for t in sim.targets if t.kind != "none")
        assert enrolled == paired_targets
        assert len(sim.targets) < 2000

"""The Section 4.1 information-gathering campaign on simulated logs."""

import pytest

from repro.sim.population import Population
from repro.sim.preaudit import run_information_gathering


@pytest.fixture(scope="module")
def result():
    population = Population(400, seed=5)
    return run_information_gathering(population, days=30, seed=6)


class TestInformationGathering:
    def test_log_volume_plausible(self, result):
        # Hundreds of users over a month produce a serious log.
        assert result.total_entries > 5_000

    def test_staff_threshold_positive(self, result):
        assert result.staff_threshold > 0

    def test_targets_above_threshold(self, result):
        for target in result.targets:
            assert target.total_events > result.staff_threshold

    def test_targets_exclude_service_accounts(self, result):
        service = set(result.service_accounts)
        assert all(t.username not in service for t in result.targets)

    def test_targets_are_automated_accounts(self, result):
        """The outreach list should be dominated by TTY-less automation —
        "The far majority of these log in events were not invoked with a
        TTY"."""
        if not result.targets:
            pytest.skip("this seed produced no above-threshold users")
        notty = [t for t in result.targets if t.notty_fraction > 0.5]
        assert len(notty) >= len(result.targets) * 0.8

    def test_minority_majority_property(self, result):
        """"a minority of users were responsible for the majority of
        entries" — the top decile carries most of the volume."""
        assert result.top_decile_share > 0.5

    def test_automated_share(self, result):
        assert result.automated_event_share > 0.5
        # But automated accounts are a small minority of the population.
        assert result.automated_user_count < 0.15 * len(result.auditor.ranked())

    def test_deterministic(self):
        population = Population(200, seed=5)
        a = run_information_gathering(population, days=10, seed=6)
        b = run_information_gathering(Population(200, seed=5), days=10, seed=6)
        assert a.total_entries == b.total_entries
        assert [t.username for t in a.targets] == [t.username for t in b.targets]

"""Reproducibility of the rollout simulation.

The paper's figures must be regenerable: identical configuration produces
bit-identical series; different seeds move the noise but not the shape.
"""

from datetime import date

from repro.sim import RolloutConfig, RolloutSimulation


def run(seed, population=400):
    sim = RolloutSimulation(
        RolloutConfig(population_size=population, seed=seed, real_login_fraction=0.0)
    )
    return sim.run()


class TestDeterminism:
    def test_identical_seeds_identical_series(self):
        a = run(123)
        b = run(123)
        for name in (
            "unique_mfa_users",
            "external_mfa",
            "external_nonmfa",
            "internal",
            "mfa_tickets",
            "other_tickets",
            "new_pairings",
        ):
            assert (getattr(a, name) == getattr(b, name)).all(), name
        assert a.pairing_types == b.pairing_types

    def test_different_seeds_differ(self):
        a = run(123)
        b = run(456)
        assert (a.new_pairings != b.new_pairings).any()

    def test_shape_stable_across_seeds(self):
        """The qualitative claims hold for any seed, not one lucky draw."""
        for seed in (5, 77):
            m = run(seed)
            # Adoption rises across phases.
            p1 = m.mean_over(m.unique_mfa_users, date(2016, 8, 15), date(2016, 9, 5))
            p3 = m.mean_over(m.unique_mfa_users, date(2016, 10, 10), date(2016, 12, 10))
            assert p3 > p1, seed
            # Phase-2 drop in non-MFA external traffic.
            t1 = m.mean_over(m.external_nonmfa, date(2016, 8, 10), date(2016, 9, 5))
            t2 = m.mean_over(m.external_nonmfa, date(2016, 9, 10), date(2016, 10, 3))
            assert t2 < t1, seed
            # Soft remains the most popular device.
            breakdown = m.pairing_breakdown_percent()
            assert breakdown["soft"] > breakdown["sms"], seed

    def test_population_scaling(self):
        """Twice the users produce roughly twice the traffic, same shape."""
        small = run(9, population=300)
        large = run(9, population=600)
        ratio = large.all_traffic.sum() / small.all_traffic.sum()
        assert 1.4 < ratio < 2.8

    def test_run_idempotent(self):
        sim = RolloutSimulation(
            RolloutConfig(population_size=300, seed=3, real_login_fraction=0.0)
        )
        first = sim.run()
        snapshot = first.new_pairings.copy()
        second = sim.run()  # a second run() must not re-simulate
        assert second is first
        assert (first.new_pairings == snapshot).all()


class TestCSVExport:
    def test_export_round_trip(self, tmp_path):
        m = run(55, population=300)
        path = tmp_path / "series.csv"
        rows = m.to_csv(str(path))
        lines = path.read_text().splitlines()
        assert rows == m.days
        assert len(lines) == m.days + 1  # header + one row per day
        header = lines[0].split(",")
        assert header[0] == "date"
        assert "new_pairings" in header
        # Spot-check one row against the arrays.
        first = lines[1].split(",")
        assert first[0] == m.date_of(0).isoformat()
        column = header.index("new_pairings")
        assert int(first[column]) == int(m.new_pairings[0])

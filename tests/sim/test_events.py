"""Discrete-event engine: ordering, clock advancement, daily ticks."""

import pytest

from repro.common.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock(0.0))


class TestScheduling:
    def test_events_fire_in_time_order(self, queue):
        fired = []
        queue.schedule_at(30.0, lambda: fired.append("b"))
        queue.schedule_at(10.0, lambda: fired.append("a"))
        queue.schedule_at(20.0, lambda: fired.append("m"))
        queue.run_until(100.0)
        assert fired == ["a", "m", "b"]

    def test_same_time_fifo(self, queue):
        fired = []
        for tag in "abc":
            queue.schedule_at(10.0, lambda t=tag: fired.append(t))
        queue.run_until(100.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, queue):
        times = []
        queue.schedule_at(42.0, lambda: times.append(queue.clock.now()))
        queue.run_until(100.0)
        assert times == [42.0]
        assert queue.clock.now() == 100.0

    def test_past_scheduling_rejected(self, queue):
        queue.clock.advance(50)
        with pytest.raises(ValueError):
            queue.schedule_at(10.0, lambda: None)

    def test_schedule_in(self, queue):
        queue.clock.advance(10)
        fired = []
        queue.schedule_in(5.0, lambda: fired.append(queue.clock.now()))
        queue.run_until(100.0)
        assert fired == [15.0]

    def test_run_until_leaves_future_events(self, queue):
        fired = []
        queue.schedule_at(10.0, lambda: fired.append(1))
        queue.schedule_at(200.0, lambda: fired.append(2))
        assert queue.run_until(100.0) == 1
        assert fired == [1]
        assert len(queue) == 1
        queue.run_until(300.0)
        assert fired == [1, 2]

    def test_events_may_schedule_events(self, queue):
        fired = []

        def first():
            fired.append("first")
            queue.schedule_in(1.0, lambda: fired.append("second"))

        queue.schedule_at(10.0, first)
        queue.run_until(100.0)
        assert fired == ["first", "second"]


class TestDaily:
    def test_daily_tick_indices(self, queue):
        days = []
        queue.schedule_daily(lambda d: days.append(d), days=5)
        queue.run_until(5 * 86400.0)
        assert days == [0, 1, 2, 3, 4]

    def test_daily_spacing(self, queue):
        times = []
        queue.schedule_daily(lambda d: times.append(queue.clock.now()), days=3)
        queue.run_until(10 * 86400.0)
        assert times == [0.0, 86400.0, 172800.0]

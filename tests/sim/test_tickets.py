"""The support-ticket load model."""

import random
from datetime import date

import pytest

from repro.sim.tickets import TicketModel


@pytest.fixture
def model():
    return TicketModel(population=2000)


WEDNESDAY = date(2016, 9, 14)
SATURDAY = date(2016, 9, 17)
CHRISTMAS = date(2016, 12, 25)


class TestBaseline:
    def test_scales_with_population(self):
        rng = random.Random(1)
        small = sum(TicketModel(1000).other_tickets(WEDNESDAY, rng) for _ in range(200))
        rng = random.Random(1)
        large = sum(TicketModel(10000).other_tickets(WEDNESDAY, rng) for _ in range(200))
        assert 6 < large / small < 14

    def test_weekend_quieter(self, model):
        rng = random.Random(2)
        weekday = sum(model.other_tickets(WEDNESDAY, rng) for _ in range(100))
        rng = random.Random(2)
        weekend = sum(model.other_tickets(SATURDAY, rng) for _ in range(100))
        assert weekend < weekday

    def test_holiday_quieter(self, model):
        rng = random.Random(3)
        normal = sum(model.other_tickets(WEDNESDAY, rng) for _ in range(100))
        rng = random.Random(3)
        holiday = sum(model.other_tickets(CHRISTMAS, rng) for _ in range(100))
        assert holiday < normal

    def test_never_negative(self, model):
        rng = random.Random(4)
        for _ in range(500):
            assert model.other_tickets(WEDNESDAY, rng) >= 0
            assert model.mfa_tickets(WEDNESDAY, 0, 0, 0, rng) >= 0


class TestMFADrivers:
    def test_pairings_drive_tickets(self, model):
        rng = random.Random(5)
        quiet = sum(model.mfa_tickets(WEDNESDAY, 0, 0, 0, rng) for _ in range(100))
        rng = random.Random(5)
        busy = sum(model.mfa_tickets(WEDNESDAY, 200, 0, 0, rng) for _ in range(100))
        assert busy > quiet

    def test_lockouts_drive_tickets_hardest(self, model):
        rng = random.Random(6)
        pairing_driven = sum(
            model.mfa_tickets(WEDNESDAY, 100, 0, 0, rng) for _ in range(100)
        )
        rng = random.Random(6)
        lockout_driven = sum(
            model.mfa_tickets(WEDNESDAY, 0, 0, 100, rng) for _ in range(100)
        )
        # Per event, a deadline lockout is far likelier to open a ticket.
        assert lockout_driven > pairing_driven

    def test_steady_trickle_exists(self, model):
        """Post-transition MFA tickets don't go to zero: new users and
        device changes keep arriving."""
        rng = random.Random(7)
        total = sum(model.mfa_tickets(WEDNESDAY, 0, 0, 0, rng) for _ in range(200))
        assert total > 0

"""Rollout simulation: infrastructure consistency and figure shapes.

These run on a reduced population (the benchmark harness uses the full
configuration); the shape assertions use generous bands because a small
population is noisier.
"""

from datetime import date

import pytest

from repro.sim import RolloutConfig, RolloutSimulation
from repro.sim.metrics import DailyMetrics


@pytest.fixture(scope="module")
def sim():
    simulation = RolloutSimulation(
        RolloutConfig(population_size=600, seed=20160810, real_login_fraction=0.01)
    )
    simulation.run()
    return simulation


@pytest.fixture(scope="module")
def metrics(sim):
    return sim.metrics


class TestInfrastructureConsistency:
    def test_real_logins_ran(self, metrics):
        assert metrics.real_logins_run > 10

    def test_no_mismatches(self, metrics):
        """Every sampled real login agreed with the statistical model —
        the simulator and the actual PAM/RADIUS/OTP stack are coherent."""
        assert metrics.real_login_mismatches == 0

    def test_pairings_are_real_enrollments(self, sim):
        """Each counted pairing exists in the OTP server's database."""
        counted = int(sim.metrics.new_pairings.sum())
        enrolled = sum(sim.center.otp.token_count_by_type().values())
        assert enrolled == counted

    def test_identity_and_otp_agree(self, sim):
        from repro.directory.identity import PairingStatus

        for username in sim.center.identity.usernames():
            account = sim.center.identity.get(username)
            has_token = sim.center.otp.has_pairing(account.uid)
            is_paired = account.pairing_status is not PairingStatus.UNPAIRED
            assert has_token == is_paired, username

    def test_mode_followed_schedule(self, sim):
        assert sim.system.mode == "full"


class TestFigure3Shape:
    """Unique MFA users/day: rising through phases 1-2, plateau in 3,
    holiday dip, spring recovery."""

    def test_monotone_adoption_phases(self, metrics):
        phase1 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 8, 20), date(2016, 9, 5))
        phase2 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 9, 10), date(2016, 10, 3))
        phase3 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 10, 10), date(2016, 12, 10))
        assert phase1 < phase2 < phase3

    def test_near_max_after_mandatory(self, metrics):
        phase3 = metrics.mean_over(metrics.unique_mfa_users, date(2016, 10, 10), date(2016, 12, 10))
        spring = metrics.mean_over(metrics.unique_mfa_users, date(2017, 2, 1), date(2017, 3, 20))
        assert phase3 > 0
        assert abs(spring - phase3) / phase3 < 0.5

    def test_holiday_dip(self, metrics):
        before = metrics.mean_over(metrics.unique_mfa_users, date(2016, 11, 28), date(2016, 12, 14))
        holiday = metrics.mean_over(metrics.unique_mfa_users, date(2016, 12, 18), date(2017, 1, 1))
        assert holiday < 0.6 * before


class TestFigure4Shape:
    """SSH traffic: the phase-2 drop in external non-MFA traffic, with
    exempt automation persisting through phase 3."""

    def test_phase2_drop_in_nonmfa_external(self, metrics):
        phase1 = metrics.mean_over(metrics.external_nonmfa, date(2016, 8, 10), date(2016, 9, 5))
        phase2 = metrics.mean_over(metrics.external_nonmfa, date(2016, 9, 10), date(2016, 10, 3))
        assert phase2 < 0.85 * phase1

    def test_automation_persists_in_phase3(self, metrics):
        """Exempted gateway/community traffic continues: "automated,
        non-interactive traffic continues to account for a significant
        portion of login events"."""
        phase3 = metrics.mean_over(metrics.external_nonmfa, date(2016, 10, 10), date(2016, 12, 10))
        total = metrics.mean_over(metrics.external_total, date(2016, 10, 10), date(2016, 12, 10))
        assert phase3 / total > 0.3

    def test_mfa_traffic_grows(self, metrics):
        phase1 = metrics.mean_over(metrics.external_mfa, date(2016, 8, 10), date(2016, 9, 5))
        phase3 = metrics.mean_over(metrics.external_mfa, date(2016, 10, 10), date(2016, 12, 10))
        assert phase3 > phase1

    def test_internal_traffic_not_disrupted(self, metrics):
        """Internal traffic "was not particularly affected by the
        transition" — no collapse across the mandatory boundary."""
        before = metrics.mean_over(metrics.internal, date(2016, 9, 1), date(2016, 10, 3))
        after = metrics.mean_over(metrics.internal, date(2016, 10, 5), date(2016, 11, 10))
        assert after > 0.6 * before

    def test_composites_consistent(self, metrics):
        assert (metrics.external_total == metrics.external_mfa + metrics.external_nonmfa).all()
        assert (metrics.all_traffic >= metrics.external_total).all()


class TestFigure5Shape:
    """Ticket load: MFA share modest during transition, waning after."""

    def test_transition_share_band(self, metrics):
        share = metrics.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31))
        assert 0.03 <= share <= 0.14  # paper: 6.7%

    def test_steady_state_share_band(self, metrics):
        share = metrics.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31))
        assert 0.005 <= share <= 0.06  # paper: 2.7%

    def test_share_wanes_after_transition(self, metrics):
        transition = metrics.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31))
        steady = metrics.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31))
        assert steady < transition


class TestFigure6Shape:
    """New pairings: Sep 7 the biggest day; deadline spike; announcements."""

    def test_sep7_top_day(self, metrics):
        assert metrics.pairing_rank_of(date(2016, 9, 7)) <= 2

    def test_oct4_spike_but_not_peak(self, metrics):
        rank = metrics.pairing_rank_of(date(2016, 10, 4))
        assert 2 <= rank <= 8  # the paper ranks it fourth

    def test_announcement_day_local_spike(self, metrics):
        day = metrics.day_of(date(2016, 8, 10))
        before = metrics.new_pairings[day - 5 : day].mean()
        assert metrics.new_pairings[day] > 2 * max(before, 1)

    def test_majority_paired_before_deadline(self, metrics):
        """Figure 3's caption: "Most users had already paired an MFA
        device before the mandatory deadline"."""
        deadline = metrics.day_of(date(2016, 10, 4))
        before = metrics.new_pairings[:deadline].sum()
        assert before / metrics.new_pairings.sum() > 0.5


class TestTable1Shape:
    def test_breakdown_matches_paper(self, metrics):
        breakdown = metrics.pairing_breakdown_percent()
        assert 48 <= breakdown["soft"] <= 62  # paper: 55.38
        assert 33 <= breakdown["sms"] <= 48  # paper: 40.22
        assert 0.5 <= breakdown["training"] <= 6  # paper: 2.97
        assert 0.3 <= breakdown["hard"] <= 4  # paper: 1.43

    def test_ordering_matches_paper(self, metrics):
        breakdown = metrics.pairing_breakdown_percent()
        assert breakdown["soft"] > breakdown["sms"] > breakdown["training"] > breakdown["hard"]


class TestMetricsHelpers:
    def test_day_date_round_trip(self):
        m = DailyMetrics(date(2016, 8, 1), 10)
        assert m.day_of(m.date_of(5)) == 5

    def test_top_pairing_days_sorted(self, metrics):
        top = metrics.top_pairing_days(5)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_mean_over_empty_window(self, metrics):
        assert metrics.mean_over(metrics.internal, date(2020, 1, 1), date(2020, 2, 1)) == 0.0

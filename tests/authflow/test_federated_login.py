"""End-to-end federated logins through the full MFACenter deployment.

A partner-site user is admitted via ``pair_federated``, logs in with a
home-site bearer assertion, and the whole policy surface applies: replay
and forgery are counted failures, risk-driven STEP_UP demands the local
second factor, and a resolver outage is an explicit REJECT (never
"unknown user") with the in-process directory as the failover target.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.directory.identity import IdentityBackend
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.otpserver.results import ValidateStatus
from repro.otpserver.server import OTPServer
from repro.resolvers import (
    AttestationIssuer,
    LDAPSimResolver,
    ResolverChain,
    ResolverConfig,
)

HOME_IP = "198.51.100.7"
ATTACKER_IP = "203.0.113.9"
PRINCIPAL = "ali@partner.edu"
STEP_UP_CODE = "123456"


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T12:00:00")


@pytest.fixture
def center(clock):
    center = MFACenter(
        clock=clock,
        rng=random.Random(0xFED),
        resolvers=ResolverConfig(use_ldap=True),
        risk=True,
    )
    center.add_system("stampede", mode="full")
    center.create_user("alice")
    center.create_user("bob")
    return center


@pytest.fixture
def issuer(center):
    return center.pair_federated("alice", PRINCIPAL, step_up_code=STEP_UP_CODE)


class TestFederatedLogin:
    def test_fresh_assertion_validates(self, center, issuer):
        result = center.otp.validate(PRINCIPAL, issuer.issue("ali"), source=HOME_IP)
        assert result.ok
        assert result.serial.startswith("LSFD")

    def test_replayed_assertion_rejected_and_counted(self, center, issuer):
        assertion = issuer.issue("ali")
        assert center.otp.validate(PRINCIPAL, assertion, source=HOME_IP).ok
        replay = center.otp.validate(PRINCIPAL, assertion, source=ATTACKER_IP)
        assert replay.status is ValidateStatus.REJECT
        assert replay.reason == "assertion replayed"
        # The replay walked through ApplyOutcome like any wrong code.
        (token,) = center.otp.user_tokens(center.uid_of("alice"))
        assert token.failcount == 1

    def test_forged_assertion_rejected(self, center, issuer, clock):
        rogue = AttestationIssuer(
            "partner.edu", b"A" * 32, clock=clock, rng=random.Random(13)
        )
        result = center.otp.validate(PRINCIPAL, rogue.issue("ali"), source=ATTACKER_IP)
        assert result.status is ValidateStatus.REJECT
        assert result.reason == "assertion signature invalid"

    def test_subject_mismatch_rejected(self, center, issuer):
        result = center.otp.validate(PRINCIPAL, issuer.issue("mallory"), source=HOME_IP)
        assert result.status is ValidateStatus.REJECT
        assert result.reason == "assertion subject mismatch"

    def test_unknown_principal_fails_closed(self, center, issuer):
        result = center.otp.validate(
            "ghost@unknown.org", issuer.issue("ghost"), source=HOME_IP
        )
        assert result.status is ValidateStatus.NO_TOKEN
        assert result.reason == "unknown user"


class TestRiskStepUp:
    def _arm_risk(self, center, issuer):
        """A clean success from home arms novel-origin for later logins."""
        center.risk_stage.add_watchlist("203.0.113.0/24")
        assert center.otp.validate(PRINCIPAL, issuer.issue("ali"), source=HOME_IP).ok

    def test_risky_login_demands_local_second_factor(self, center, issuer):
        self._arm_risk(center, issuer)
        bare = center.otp.validate(PRINCIPAL, issuer.issue("ali"), source=ATTACKER_IP)
        assert bare.status is ValidateStatus.REJECT
        assert bare.reason == "risk step-up: local second factor required"

    def test_assertion_plus_step_up_code_satisfies_challenge(self, center, issuer):
        self._arm_risk(center, issuer)
        stepped = center.otp.validate(
            PRINCIPAL,
            f"{issuer.issue('ali')}.{STEP_UP_CODE}",
            source=ATTACKER_IP,
        )
        assert stepped.ok

    def test_wrong_step_up_code_rejected(self, center, issuer):
        self._arm_risk(center, issuer)
        wrong = center.otp.validate(
            PRINCIPAL, f"{issuer.issue('ali')}.000000", source=ATTACKER_IP
        )
        assert wrong.status is ValidateStatus.REJECT
        assert wrong.reason == "risk step-up: local second factor required"


class TestResolverFailover:
    def test_ldap_outage_fails_over_to_directory(self, center):
        center.pair_training("bob", "424242")
        chain = center.resolver_chain
        assert center.otp.validate("bob", "424242", source=HOME_IP).ok
        chain.resolver("ldap").set_outage(True)
        chain.invalidate()
        result = center.otp.validate("bob", "424242", source=HOME_IP)
        assert result.ok
        assert chain.failovers >= 1

    def test_all_resolvers_down_is_reject_not_unknown_user(self, clock):
        server = OTPServer(clock=clock, rng=random.Random(1))
        chain = ResolverChain(clock=clock)
        ldap = LDAPSimResolver(IdentityBackend().ldap, clock=clock)
        chain.register(ldap)
        ldap.set_outage(True)
        server.attach_resolvers(chain)
        result = server.validate("alice", "000000")
        assert result.status is ValidateStatus.REJECT
        assert result.reason == "identity resolvers unavailable"

    def test_federation_without_verifier_rejects(self, clock):
        server = OTPServer(clock=clock, rng=random.Random(2))
        server.enroll_federated("uid0001", PRINCIPAL)
        result = server.validate("uid0001", "FED1.e30.00")
        assert result.status is ValidateStatus.REJECT
        assert result.reason == "federation not configured"


class TestAdminView:
    def test_admin_resolvers_route_reports_chain(self, center, issuer):
        api = AdminAPI(center.otp, rng=random.Random(3))
        api.add_admin("portal", "s3cret")
        client = AdminAPIClient(api, "portal", "s3cret", rng=random.Random(4))
        center.otp.validate(PRINCIPAL, issuer.issue("ali"), source=HOME_IP)
        body = client.call("GET", "/admin/resolvers")
        assert body["configured"] is True
        assert body["realms"]["partner.edu"] == ["federated"]
        assert set(body["realms"]["(default)"]) == {"ldap", "directory"}
        assert body["resolvers"]["federated"]["stats"]["hits"] == 1
        assert body["resolvers"]["ldap"]["state"] == "closed"

    def test_unconfigured_deployment_reports_stub(self, clock):
        server = OTPServer(clock=clock, rng=random.Random(5))
        api = AdminAPI(server, rng=random.Random(6))
        api.add_admin("portal", "s3cret")
        client = AdminAPIClient(api, "portal", "s3cret", rng=random.Random(7))
        assert client.call("GET", "/admin/resolvers") == {"configured": False}

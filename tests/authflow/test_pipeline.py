"""The staged validate pipeline: locks, batching, policy hooks, telemetry."""

import random
import threading

import pytest

from repro.authflow import (
    DEFAULT_STRIPES,
    AuthPipeline,
    ConcurrencyConfig,
    StripedLockSet,
    default_stages,
)
from repro.common.clock import SimulatedClock
from repro.otpserver.server import OTPServer, OTPServerConfig, ValidateStatus
from repro.policy import (
    EnforcementLadder,
    LockoutPolicy,
    PolicyEngine,
    RateLimitConfig,
)
from repro.telemetry import Registry


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


def make_server(clock, **kwargs):
    kwargs.setdefault("rng", random.Random(11))
    return OTPServer(clock=clock, **kwargs)


class TestStripedLocks:
    def test_same_key_same_lock(self):
        locks = StripedLockSet(8)
        assert locks.lock_for("alice") is locks.lock_for("alice")
        assert locks.stripe_for("alice") == locks.stripe_for("alice")

    def test_keys_spread_over_stripes(self):
        locks = StripedLockSet(16)
        stripes = {locks.stripe_for(f"user{i}") for i in range(200)}
        assert len(stripes) > 8

    def test_stripe_count_validation(self):
        with pytest.raises(ValueError):
            StripedLockSet(0)

    def test_concurrency_config_validation(self):
        with pytest.raises(ValueError):
            ConcurrencyConfig(lock_stripes=0)
        with pytest.raises(ValueError):
            ConcurrencyConfig(batch_workers=0)


class TestPipelineWiring:
    def test_server_exposes_pipeline_with_default_stripes(self, clock):
        server = make_server(clock)
        assert isinstance(server.pipeline, AuthPipeline)
        assert server.pipeline.locks.stripes == DEFAULT_STRIPES

    def test_stage_order(self, clock):
        server = make_server(clock)
        names = [stage.name for stage in default_stages(server, server.policy)]
        assert names == [
            "resolve_identity",
            "evaluate_policy",
            "replay_guard",
            "dispatch",
            "apply_outcome",
            "audit",
        ]

    def test_custom_stripe_count(self, clock):
        server = make_server(clock, concurrency=ConcurrencyConfig(lock_stripes=4))
        assert server.pipeline.locks.stripes == 4

    def test_policy_snapshot_includes_concurrency(self, clock):
        server = make_server(
            clock, concurrency=ConcurrencyConfig(lock_stripes=4, batch_workers=2)
        )
        snap = server.policy_snapshot()
        assert snap["concurrency"] == {"lock_stripes": 4, "batch_workers": 2}
        assert snap["lockout"]["threshold"] == 20


class TestStageTelemetry:
    def test_per_stage_histogram_and_decision_counter(self, clock):
        telemetry = Registry()
        server = make_server(clock, telemetry=telemetry)
        server.enroll_static("alice", "424242")
        assert server.validate("alice", "424242").ok
        server.validate("alice", "000000")

        histogram = telemetry.histogram("authflow_stage_seconds", "")
        for stage in ("resolve_identity", "evaluate_policy", "replay_guard",
                      "dispatch", "apply_outcome", "audit"):
            assert histogram.count(stage=stage) == 2, stage

        decisions = telemetry.counter("authflow_decisions_total", "")
        assert decisions.value(status="ok") == 1
        assert decisions.value(status="reject") == 1

    def test_policy_decisions_counted(self, clock):
        telemetry = Registry()
        server = make_server(clock, telemetry=telemetry)
        server.enroll_static("alice", "424242")
        server.validate("alice", "424242")
        counter = telemetry.counter("policy_decisions_total", "")
        assert counter.value(action="challenge") == 1


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestValidateMany:
    """The deprecated wrapper must keep its exact legacy behaviour
    (ordering, threading, telemetry) while it delegates to submit_many;
    tests/ingest/test_submit_api.py covers the replacement surface."""

    def test_results_positional_and_correct(self, clock):
        server = make_server(clock)
        for i in range(6):
            server.enroll_static(f"user{i}", f"{i}{i}{i}{i}{i}{i}")
        requests = [(f"user{i}", f"{i}{i}{i}{i}{i}{i}" if i % 2 == 0 else "999999")
                    for i in range(6)]
        requests.append(("ghost", "123456"))
        results = server.validate_many(requests)
        assert len(results) == 7
        for i in range(6):
            assert results[i].ok == (i % 2 == 0)
        assert results[6].status is ValidateStatus.NO_TOKEN

    def test_single_request_batch(self, clock):
        server = make_server(clock)
        server.enroll_static("solo", "424242")
        results = server.validate_many([("solo", "424242")])
        assert len(results) == 1 and results[0].ok

    def test_empty_batch(self, clock):
        server = make_server(clock)
        assert server.validate_many([]) == []

    def test_same_user_race_keeps_failcount_exact(self, clock):
        """Concurrent failures for one user must serialize on their stripe."""
        server = make_server(
            clock, config=OTPServerConfig(lockout_threshold=500)
        )
        server.enroll_static("alice", "424242")
        threads = [
            threading.Thread(
                target=lambda: server.validate_many([("alice", "000000")] * 10)
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (token,) = server.user_tokens("alice")
        assert token.failcount == 80

    def test_batch_with_telemetry_registry_is_thread_safe(self, clock):
        """Worker threads drive real instruments without losing increments."""
        telemetry = Registry()
        server = make_server(clock, telemetry=telemetry)
        for i in range(8):
            server.enroll_static(f"user{i}", "424242")
        requests = [(f"user{i % 8}", "424242") for i in range(64)]
        results = server.validate_many(requests)
        assert all(r.ok for r in results)
        decisions = telemetry.counter("authflow_decisions_total", "")
        assert decisions.value(status="ok") == 64


class TestPolicyHooks:
    def test_rate_limited_source_rejected_without_burning_failcount(self, clock):
        policy = PolicyEngine(
            lockout=LockoutPolicy(20),
            rate_limit=RateLimitConfig(rate=1.0, burst=2.0),
            clock=clock,
        )
        server = make_server(clock, policy=policy)
        server.enroll_static("alice", "424242")
        source = "203.0.113.9"
        assert server.validate("alice", "424242", source=source).ok
        assert server.validate("alice", "424242", source=source).ok
        throttled = server.validate("alice", "424242", source=source)
        assert throttled.status is ValidateStatus.REJECT
        assert "rate limit" in throttled.reason
        (token,) = server.user_tokens("alice")
        assert token.failcount == 0

    def test_requests_without_source_bypass_admission(self, clock):
        policy = PolicyEngine(
            rate_limit=RateLimitConfig(rate=1.0, burst=1.0), clock=clock
        )
        server = make_server(clock, policy=policy)
        server.enroll_static("alice", "424242")
        for _ in range(4):
            assert server.validate("alice", "424242").ok

    def test_exempt_user_passes_without_code(self, clock):
        class GrantAll:
            def check(self, username, ip):
                return True

        policy = PolicyEngine(exemptions=GrantAll(), clock=clock)
        server = make_server(clock, policy=policy)
        server.enroll_static("alice", "424242")
        result = server.validate("alice", "000000", source="10.0.0.5")
        assert result.ok
        assert "exemption" in result.reason
        (token,) = server.user_tokens("alice")
        assert token.failcount == 0

    def test_ladder_off_allows_any_code(self, clock):
        policy = PolicyEngine(ladder=EnforcementLadder("off"), clock=clock)
        server = make_server(clock, policy=policy)
        server.enroll_static("alice", "424242")
        result = server.validate("alice", "000000")
        assert result.ok
        assert result.reason == "enforcement off"

    def test_default_policy_challenges_as_before(self, clock):
        server = make_server(clock)
        server.enroll_static("alice", "424242")
        assert not server.validate("alice", "000000").ok
        assert server.validate("alice", "424242").ok

"""The Section 3.4 storage topology: batch transfers without a second factor.

"Remote storage systems are configured to accept SSH traffic from all HPC
systems within the internal network.  This allows for batch transfer of
files to remote storage systems from shared file systems attached to
either the login or compute nodes ... as their jobs run without their
presence."
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.ssh import SSHClient


@pytest.fixture
def center():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1))
    center.create_user("alice", password="pw")
    return center


class TestStorageTopology:
    def test_compute_to_storage_exempt(self, center):
        stampede = center.add_system("stampede", mode="full")
        ranch = center.add_storage_system("ranch")
        # A batch job on a stampede compute node pushes to the archive.
        compute_node = SSHClient(f"{stampede.ip_prefix}.200")
        result, _ = compute_node.connect(
            ranch.login_node(), "alice", password="pw", tty=False
        )
        assert result.success
        assert result.session_items.get("mfa_exempt")

    def test_all_systems_covered(self, center):
        stampede = center.add_system("stampede", mode="full")
        wrangler = center.add_system("wrangler", mode="full")
        ranch = center.add_storage_system("ranch")
        for system in (stampede, wrangler):
            client = SSHClient(f"{system.ip_prefix}.42")
            result, _ = client.connect(ranch.login_node(), "alice",
                                       password="pw", tty=False)
            assert result.success, system.name

    def test_later_systems_added_to_storage_acl(self, center):
        ranch = center.add_storage_system("ranch")
        frontera = center.add_system("frontera", mode="full")  # added after
        client = SSHClient(f"{frontera.ip_prefix}.7")
        result, _ = client.connect(ranch.login_node(), "alice",
                                   password="pw", tty=False)
        assert result.success

    def test_external_access_to_storage_still_needs_mfa(self, center):
        center.add_system("stampede", mode="full")
        ranch = center.add_storage_system("ranch")
        outsider = SSHClient("198.51.100.7")
        result, _ = outsider.connect(ranch.login_node(), "alice",
                                     password="pw", token="000000")
        assert not result.success

    def test_compute_to_compute_not_exempt_across_systems(self, center):
        """The exemption is *into storage*, not between compute systems —
        a stampede node hitting wrangler still needs MFA."""
        stampede = center.add_system("stampede", mode="full")
        wrangler = center.add_system("wrangler", mode="full")
        client = SSHClient(f"{stampede.ip_prefix}.200")
        result, _ = client.connect(wrangler.login_node(), "alice",
                                   password="pw", token="000000")
        assert not result.success

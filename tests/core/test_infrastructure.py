"""MFACenter facade: topology, pairing conveniences, mode switching."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NotFoundError, ValidationError
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import AccountClass
from repro.ssh import SSHClient


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def center(clock):
    return MFACenter(clock=clock, rng=random.Random(1))


class TestTopology:
    def test_radius_farm_size(self, clock):
        center = MFACenter(clock=clock, num_radius_servers=5, rng=random.Random(2))
        assert len(center.radius_servers) == 5

    def test_systems_get_distinct_subnets(self, center):
        a = center.add_system("stampede")
        b = center.add_system("wrangler")
        assert a.ip_prefix != b.ip_prefix

    def test_duplicate_system_rejected(self, center):
        center.add_system("stampede")
        with pytest.raises(ValidationError):
            center.add_system("stampede")

    def test_system_lookup(self, center):
        system = center.add_system("stampede")
        assert center.system("stampede") is system
        with pytest.raises(NotFoundError):
            center.system("frontera")

    def test_login_node_count(self, center):
        system = center.add_system("stampede", login_nodes=4)
        assert len(system.daemons) == 4

    def test_nodes_share_system_authlog(self, center):
        system = center.add_system("stampede", login_nodes=2)
        assert system.daemons[0].authlog is system.daemons[1].authlog


class TestPairingConveniences:
    def test_pair_soft_updates_both_databases(self, center):
        center.create_user("alice")
        serial, secret = center.pair_soft("alice")
        assert center.otp.has_pairing(center.uid_of("alice"))
        assert center.identity.get("alice").pairing_status.value == "soft"
        assert center.identity.pairing_type("alice").value == "soft"

    def test_pair_sms(self, center):
        center.create_user("bob")
        center.pair_sms("bob", "5125551234")
        assert center.identity.get("bob").pairing_status.value == "sms"

    def test_pair_hard_from_batch(self, center):
        center.create_user("carol")
        batch = center.receive_hard_batch(3)
        center.pair_hard("carol", batch.serials()[0])
        assert center.identity.get("carol").pairing_status.value == "hard"

    def test_pair_training_returns_code(self, center):
        center.create_user("train01", account_class=AccountClass.TRAINING)
        code = center.pair_training("train01")
        assert len(code) == 6 and code.isdigit()
        assert center.otp.validate(center.uid_of("train01"), code).ok

    def test_unpair(self, center):
        center.create_user("alice")
        center.pair_soft("alice")
        center.unpair("alice")
        assert not center.otp.has_pairing(center.uid_of("alice"))
        assert center.identity.get("alice").pairing_status.value == "unpaired"

    def test_pairing_breakdown(self, center):
        for name, pair in [
            ("u1", lambda: center.pair_soft("u1")),
            ("u2", lambda: center.pair_soft("u2")),
            ("u3", lambda: center.pair_sms("u3", "5125550001")),
            ("u4", lambda: None),  # unpaired: excluded from the breakdown
        ]:
            center.create_user(name)
            pair()
        breakdown = center.pairing_breakdown()
        assert breakdown["soft"] == pytest.approx(200 / 3)
        assert breakdown["sms"] == pytest.approx(100 / 3)


class TestModeSwitch:
    def test_live_mode_switch(self, center, clock):
        system = center.add_system("stampede", mode="paired")
        center.create_user("alice", password="pw")
        client = SSHClient("198.51.100.7")
        node = system.login_node()
        # Unpaired user sails through in paired mode...
        result, _ = client.connect(node, "alice", password="pw")
        assert result.success
        # ...until the admin flips to full.
        system.set_mode("full")
        clock.advance(1)
        result, _ = client.connect(node, "alice", password="pw", token="123456")
        assert not result.success

    def test_mode_switch_back_to_off(self, center, clock):
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(system.login_node(), "alice", password="pw",
                                   token="123456")
        assert not result.success
        system.set_mode("off")
        result, _ = client.connect(system.login_node(), "alice", password="pw")
        assert result.success


class TestExemptionManagement:
    def test_add_exemption_live(self, center):
        system = center.add_system("stampede", mode="full")
        center.create_user("gw", password="pw", account_class=AccountClass.GATEWAY)
        client = SSHClient("203.0.113.5")
        result, _ = client.connect(system.login_node(), "gw", password="pw",
                                   token="000000")
        assert not result.success
        system.add_exemption(accounts="gw", origins="ALL")
        result, _ = client.connect(system.login_node(), "gw", password="pw")
        assert result.success

    def test_internal_traffic_exempt_by_default(self, center):
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        internal = SSHClient(f"{system.ip_prefix}.42")
        result, _ = internal.connect(system.login_node(), "alice", password="pw")
        assert result.success
        assert result.session_items.get("mfa_exempt")

    def test_denial_overrides_grant(self, center):
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        system.add_denial(accounts="alice", origins="ALL")
        system.add_exemption(accounts="ALL", origins="ALL")
        client = SSHClient("198.51.100.9")
        result, _ = client.connect(system.login_node(), "alice", password="pw",
                                   token="000000")
        assert not result.success

    def test_expiring_variance(self, center, clock):
        """The staff 'temporary variance' workflow from Section 4.2."""
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        system.add_exemption(accounts="alice", origins="ALL", expiry="2016-10-20")
        client = SSHClient("198.51.100.9")
        result, _ = client.connect(system.login_node(), "alice", password="pw")
        assert result.success
        clock.advance(30 * 86400)  # the variance lapses
        result, _ = client.connect(system.login_node(), "alice", password="pw",
                                   token="000000")
        assert not result.success


class TestEndToEndAuth:
    def test_radius_username_uid_translation(self, center, clock):
        """RADIUS carries usernames; tokens live under uids — the adapter
        must join them (Section 3.1's shared unique ID)."""
        system = center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        _, secret = center.pair_soft("alice")
        device = TOTPGenerator(secret=secret, clock=clock)
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success

    def test_unknown_user_gets_no_token_path(self, center):
        response = center.radius_backend.validate("ghost", "123456")
        assert response.status.value == "no_token"


class TestFileBackedPAM:
    """MFACenter(pam_dir=...) drives login-node stacks from pam.d files."""

    def make(self, clock, tmp_path):
        center = MFACenter(
            clock=clock, rng=random.Random(5), pam_dir=str(tmp_path / "pam.d")
        )
        system = center.add_system("stampede", mode="paired")
        center.create_user("alice", password="pw")
        return center, system

    def test_config_file_exists(self, clock, tmp_path):
        _, system = self.make(clock, tmp_path)
        text = system._pam_manager.read_config("sshd")
        assert "pam_mfa_token.so mode=paired" in text

    def test_login_through_file_backed_stack(self, clock, tmp_path):
        center, system = self.make(clock, tmp_path)
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(system.login_node(), "alice", password="pw")
        assert result.success  # unpaired + paired mode

    def test_file_edit_takes_effect_next_login(self, clock, tmp_path):
        """The operational act itself: an admin edits the file directly."""
        center, system = self.make(clock, tmp_path)
        client = SSHClient("198.51.100.7")
        assert client.connect(system.login_node(), "alice", password="pw")[0].success
        # Hand-edit the pam.d file (not via set_mode).
        from repro.pam.registry import figure1_config

        system._pam_manager.write_config("sshd", figure1_config("full"))
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token="000000"
        )
        assert not result.success

    def test_set_mode_writes_the_file(self, clock, tmp_path):
        center, system = self.make(clock, tmp_path)
        system.set_mode("full")
        assert "mode=full" in system._pam_manager.read_config("sshd")
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token="000000"
        )
        assert not result.success

    def test_full_mode_with_token_through_files(self, clock, tmp_path):
        center, system = self.make(clock, tmp_path)
        system.set_mode("full")
        _, secret = center.pair_soft("alice")
        device = TOTPGenerator(secret=secret, clock=clock)
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success

"""Clock behaviour: monotonicity, ISO construction, date parsing."""

import pytest

from repro.common.clock import SimulatedClock, SystemClock, parse_date


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(100.0).now() == 100.0

    def test_advance_moves_forward(self):
        clock = SimulatedClock(10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_set_rejects_backwards(self):
        clock = SimulatedClock(100.0)
        with pytest.raises(ValueError):
            clock.set(99.0)

    def test_set_same_time_allowed(self):
        clock = SimulatedClock(100.0)
        assert clock.set(100.0) == 100.0

    def test_at_iso_string(self):
        clock = SimulatedClock.at("2016-10-04T00:00:00")
        assert clock.today().year == 2016
        assert clock.today().month == 10
        assert clock.today().day == 4

    def test_at_assumes_utc(self):
        a = SimulatedClock.at("2016-10-04T00:00:00")
        b = SimulatedClock.at("2016-10-04T00:00:00+00:00")
        assert a.now() == b.now()

    def test_today_is_aware(self):
        assert SimulatedClock(0.0).today().tzinfo is not None


class TestSystemClock:
    def test_now_progresses(self):
        clock = SystemClock()
        first = clock.now()
        assert clock.now() >= first


class TestParseDate:
    def test_plain_date(self):
        d = parse_date("2016-09-27")
        assert (d.year, d.month, d.day) == (2016, 9, 27)
        assert d.tzinfo is not None

    def test_full_iso(self):
        d = parse_date("2016-09-27T12:30:00")
        assert d.hour == 12

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_date("not-a-date")

"""Exception hierarchy contracts."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    MFAError,
    NotFoundError,
    ProtocolError,
    ReproError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_root(self):
        for exc in (
            ConfigurationError,
            MFAError,
            ValidationError,
            NotFoundError,
            ProtocolError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_is_mfa_error(self):
        assert issubclass(ValidationError, MFAError)

    def test_catching_root_catches_all(self):
        with pytest.raises(ReproError):
            raise ValidationError("bad token")

    def test_protocol_not_mfa(self):
        assert not issubclass(ProtocolError, MFAError)

"""Identifier allocation: per-tag counters, formatting, independence."""

from repro.common.ids import IdAllocator


class TestIdAllocator:
    def test_first_id_is_one(self):
        assert IdAllocator().next("user") == "user-000001"

    def test_sequential(self):
        ids = IdAllocator()
        assert [ids.next("t") for _ in range(3)] == ["t-000001", "t-000002", "t-000003"]

    def test_tags_are_independent(self):
        ids = IdAllocator()
        ids.next("a")
        ids.next("a")
        assert ids.next("b") == "b-000001"

    def test_peek_counts_without_allocating(self):
        ids = IdAllocator()
        assert ids.peek("x") == 0
        ids.next("x")
        assert ids.peek("x") == 1
        assert ids.peek("x") == 1

    def test_custom_width(self):
        assert IdAllocator(width=3).next("s") == "s-001"

    def test_ids_are_unique_across_many(self):
        ids = IdAllocator()
        allocated = {ids.next("u") for _ in range(1000)}
        assert len(allocated) == 1000

"""End-to-end telemetry: one real SSH login, one queryable span tree.

The acceptance scenario for the observability layer — a full SSHClient
login through an instrumented MFACenter must leave behind (a) a single
trace whose spans cover every layer of the auth path and (b) counters for
the PAM module results, RADIUS retries/failovers and OTP validate
statuses.  Also covers the CLI dump path and the no-op default.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.ssh import SSHClient
from repro.telemetry import NOOP_REGISTRY, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every auth-path layer that must appear as a span in a soft-token login.
EXPECTED_LAYERS = [
    "ssh.connect",
    "pam.stack",
    "pam.pam_mfa_token",
    "radius.client.authenticate",
    "radius.server.handle",
    "otp.validate",
]


@pytest.fixture
def tcenter(clock, rng):
    """An instrumented deployment (the conftest `center` stays no-op)."""
    center = MFACenter(clock=clock, rng=rng, telemetry=True)
    center.add_system("stampede", mode="full")
    return center


@pytest.fixture
def paired(tcenter, clock):
    tcenter.create_user("alice", password="pw")
    _, secret = tcenter.pair_soft("alice")
    return TOTPGenerator(secret=secret, clock=clock)


def login(center, device, token=None, user="alice", password="pw"):
    system = center.systems["stampede"]
    client = SSHClient(source_ip="198.51.100.7")
    code = device.current_code if token is None else token
    result, _ = client.connect(
        system.login_node(), user, password=password, token=code
    )
    return result


class TestSpanTree:
    def test_successful_login_trace_covers_every_layer(self, tcenter, paired):
        assert login(tcenter, paired).success
        trace = tcenter.telemetry.tracer().last_trace()
        assert trace is not None and trace.name == "ssh.connect"
        for layer in EXPECTED_LAYERS:
            assert trace.find(layer) is not None, f"missing span: {layer}"
        assert trace.span_count() >= 5

    def test_spans_nest_along_the_call_chain(self, tcenter, paired):
        login(tcenter, paired)
        trace = tcenter.telemetry.tracer().last_trace()
        # Each layer's span must contain the next layer's as a descendant.
        chain = ["pam.stack", "pam.pam_mfa_token", "radius.client.authenticate",
                 "radius.server.handle", "otp.validate"]
        node = trace
        for name in chain:
            node = node.find(name)
            assert node is not None, f"chain broken at {name}"

    def test_span_attributes(self, tcenter, paired):
        login(tcenter, paired)
        trace = tcenter.telemetry.tracer().last_trace()
        assert trace.attributes["user"] == "alice"
        assert trace.attributes["result"] == "accepted"
        assert trace.find("otp.validate").attributes["status"] == "ok"
        assert trace.find("radius.client.authenticate").attributes["status"] == "accept"

    def test_failed_login_trace(self, tcenter, paired):
        assert not login(tcenter, paired, token="000000").success
        trace = tcenter.telemetry.tracer().last_trace()
        assert trace.attributes["result"] == "rejected"
        statuses = {s.attributes.get("status") for s in trace.find_all("otp.validate")}
        assert "ok" not in statuses


class TestCounters:
    def test_pam_module_results(self, tcenter, paired):
        login(tcenter, paired)
        modules = tcenter.telemetry.counter("pam_module_results_total")
        assert modules.value(module="pam_unix", result="success") == 1
        assert modules.value(module="pam_mfa_token", result="success") == 1
        stack = tcenter.telemetry.counter("pam_stack_results_total")
        assert stack.value(service="sshd", result="success") == 1

    def test_otp_validate_statuses(self, tcenter, paired, clock):
        login(tcenter, paired)
        clock.advance(31)
        login(tcenter, paired, token="999999")
        validates = tcenter.telemetry.counter("otp_validate_total")
        assert validates.value(status="ok") == 1
        assert validates.value(status="reject") >= 1

    def test_ssh_login_counters(self, tcenter, paired, clock):
        login(tcenter, paired)
        clock.advance(31)
        login(tcenter, paired, password="wrong")
        logins = tcenter.telemetry.counter("ssh_logins_total")
        assert logins.value(host="login1.stampede", result="accepted") == 1
        assert logins.value(host="login1.stampede", result="rejected") == 1

    def test_radius_retries_and_failover(self, tcenter, paired):
        # The fresh client round-robins from index 0: downing the first
        # server forces retransmits there, then a failover to the second.
        down = tcenter.radius_servers[0]
        tcenter.fabric.set_down(down.address)
        assert login(tcenter, paired).success
        retransmits = tcenter.telemetry.counter("radius_client_retransmits_total")
        failovers = tcenter.telemetry.counter("radius_client_failovers_total")
        assert retransmits.value(server=down.address) >= 1
        assert failovers.value(to_server=tcenter.radius_servers[1].address) == 1
        responses = tcenter.telemetry.counter("radius_client_responses_total")
        assert responses.value(status="accept") == 1

    def test_snapshot_renders_the_login(self, tcenter, paired):
        login(tcenter, paired)
        text = render_text(tcenter.telemetry.snapshot())
        assert 'otp_validate_total{status="ok"} 1' in text
        assert 'ssh_logins_total{host="login1.stampede",result="accepted"} 1' in text


class TestNoopDefault:
    def test_center_defaults_to_noop(self, center):
        assert center.telemetry is NOOP_REGISTRY
        assert center.telemetry.enabled is False

    def test_noop_login_leaves_no_residue(self, center, clock):
        center.create_user("bob", password="pw")
        _, secret = center.pair_soft("bob")
        device = TOTPGenerator(secret=secret, clock=clock)
        result = login(center, device, user="bob")
        assert result.success
        assert center.telemetry.tracer().last_trace() is None
        assert center.telemetry.snapshot()["counters"] == []


class TestCLISmoke:
    def test_demo_telemetry_dump(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "demo", "--telemetry-dump"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "demo login: GRANTED" in proc.stdout
        assert "ssh_logins_total" in proc.stdout
        assert "ssh.connect" in proc.stdout  # the rendered span tree

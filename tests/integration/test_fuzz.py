"""Fuzz robustness: hostile/random inputs must fail cleanly, never crash.

Public-facing parsers are attack surface: the RADIUS codec sees whatever
arrives on the UDP port, the ACL and pam.d parsers see whatever an admin
mistypes, and the QR decoder sees whatever a camera produces.  Each must
reject garbage with its documented exception type and nothing else.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, ProtocolError
from repro.otpserver.server import OTPServer
from repro.pam.acl import parse_rules
from repro.pam.framework import parse_pam_config
from repro.qr.decoder import QRDecodeError, decode_matrix
from repro.radius.packet import decode_packet
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric
from repro.common.clock import SimulatedClock


class TestRADIUSFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_decoder_rejects_cleanly(self, noise):
        try:
            decode_packet(noise)
        except ProtocolError:
            pass

    @given(st.binary(max_size=300))
    @settings(max_examples=100)
    def test_server_never_crashes_on_garbage(self, noise):
        clock = SimulatedClock(0.0)
        fabric = UDPFabric()
        server = RADIUSServer("fuzz:1812", fabric, OTPServer(clock=clock))
        server.add_client("10.", b"secret")
        # Unknown source: dropped.  Known source, garbage payload: dropped.
        assert server.handle_datagram(noise, "8.8.8.8") is None
        result = server.handle_datagram(noise, "10.0.0.1")
        assert result is None or isinstance(result, bytes)


class TestACLFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_parse_rules_rejects_cleanly(self, text):
        try:
            parse_rules(text)
        except ConfigurationError:
            pass

    @given(
        st.lists(
            st.text(alphabet=" :+-ALL0123456789./,abcdef", max_size=40), max_size=5
        )
    )
    @settings(max_examples=100)
    def test_structured_garbage(self, lines):
        try:
            parse_rules("\n".join(lines))
        except ConfigurationError:
            pass


class TestPAMConfigFuzz:
    @given(st.text(max_size=300))
    @settings(max_examples=150)
    def test_parser_rejects_cleanly(self, text):
        try:
            parse_pam_config("sshd", text, {})
        except ConfigurationError:
            pass


class TestQRFuzz:
    @given(seed=st.integers(0, 2**32 - 1), size=st.sampled_from([21, 25, 29, 33]))
    @settings(max_examples=60, deadline=None)
    def test_random_matrix_rejected_cleanly(self, seed, size):
        rng = random.Random(seed)
        matrix = [[rng.randint(0, 1) for _ in range(size)] for _ in range(size)]
        try:
            decode_matrix(matrix)
        except QRDecodeError:
            pass


class TestOTPInputFuzz:
    @given(code=st.text(max_size=20))
    @settings(max_examples=150)
    def test_validate_handles_any_code_text(self, code):
        clock = SimulatedClock(1_000_000.0)
        server = OTPServer(clock=clock, rng=random.Random(1))
        server.enroll_soft("alice")
        result = server.validate("alice", code)
        # Any garbage is a plain rejection, never an exception.
        assert result.status.value in ("ok", "reject")

"""Coverage for the remaining public-API conveniences."""

import random

from repro.common.clock import SimulatedClock
from repro.directory.ldap import LDAPEntry
from repro.pam.conversation import CallbackConversation, ScriptedConversation
from repro.portal.store import HardTokenStore
from repro.otpserver.tokens import HardTokenBatch
from repro.sim import RolloutConfig, RolloutSimulation
from repro.ssh.client import PromptAnswers


class TestPromptAnswersSetAnswer:
    def test_answers_can_be_added_after_construction(self):
        conversation = PromptAnswers()
        conversation.set_answer("password", "pw")
        assert conversation.prompt_echo_off("Password: ") == "pw"

    def test_later_answer_overrides(self):
        conversation = PromptAnswers({"password": "old"})
        conversation.set_answer("password", "new")
        assert conversation.prompt_echo_off("Password: ") == "new"


class TestLDAPEntryAddValue:
    def test_appends_to_multivalued_attribute(self):
        entry = LDAPEntry("uid=x", {})
        entry.add_value("memberOf", "hpc-users")
        entry.add_value("memberOf", "gpu-users")
        assert entry.get("memberOf") == ["hpc-users", "gpu-users"]


class TestScriptedConversationPush:
    def test_push_response_queues(self):
        conversation = ScriptedConversation()
        conversation.push_response("123456")
        assert conversation.prompt_echo_off("Token Code: ") == "123456"


class TestCallbackConversation:
    def test_routes_prompts_through_callable(self):
        seen = []

        def responder(prompt, echo):
            seen.append((prompt, echo))
            return "answer"

        conversation = CallbackConversation(responder)
        assert conversation.prompt_echo_off("hidden? ") == "answer"
        assert conversation.prompt_echo_on("visible? ") == "answer"
        assert seen == [("hidden? ", False), ("visible? ", True)]

    def test_messages_recorded(self):
        conversation = CallbackConversation(lambda p, e: "")
        conversation.info("hello")
        conversation.error("oops")
        assert conversation.displayed == ["hello", "oops"]


class TestStoreOrdersFor:
    def test_lists_user_orders(self):
        clock = SimulatedClock(0.0)
        batch = HardTokenBatch(3, rng=random.Random(1))
        store = HardTokenStore(batch, clock)
        store.order("alice")
        store.order("alice", "France")
        store.order("bob")
        assert len(store.orders_for("alice")) == 2
        assert store.orders_for("carol") == []


class TestAutomatedNonMFAIndicator:
    def test_equals_red_minus_blue(self):
        sim = RolloutSimulation(
            RolloutConfig(population_size=300, seed=4, real_login_fraction=0.0)
        )
        m = sim.run()
        assert (
            m.automated_nonmfa_indicator == m.external_total - m.external_mfa
        ).all()

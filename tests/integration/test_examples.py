"""Every shipped example must run to completion without error.

Examples are executed in-process via runpy so a refactor that breaks a
public API used in the documentation fails the suite, not a user's first
five minutes with the library.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script, argv) — arguments chosen to keep the suite fast.
EXAMPLES = [
    ("quickstart.py", []),
    ("gateway_workflows.py", []),
    ("sms_token_flow.py", []),
    ("hard_token_lifecycle.py", []),
    ("risk_and_geolocation.py", []),
    ("phased_rollout.py", ["400"]),
    ("information_gathering.py", []),
]


@pytest.mark.parametrize("script,argv", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, argv, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    monkeypatch.setattr(sys, "argv", [str(path)] + argv)
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
    assert "Traceback" not in out


def test_every_example_file_is_exercised():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    listed = {script for script, _ in EXAMPLES}
    assert on_disk == listed, f"unlisted examples: {on_disk - listed}"

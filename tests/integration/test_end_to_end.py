"""Cross-module integration: the full user journeys of the paper."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import AccountClass
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.portal import HardTokenStore, UserPortal
from repro.qr import decode_matrix, parse_otpauth_uri
from repro.ssh import KeyPair, SSHClient


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-08-15T10:00:00")


@pytest.fixture
def world(clock):
    """The full deployment: center + portal + one system in paired mode."""
    center = MFACenter(clock=clock, rng=random.Random(1))
    system = center.add_system("stampede", mode="paired")
    api = AdminAPI(center.otp, rng=random.Random(2))
    api.add_admin("portal-svc", "s3cret")
    portal = UserPortal(
        center.identity,
        AdminAPIClient(api, "portal-svc", "s3cret", rng=random.Random(3)),
        clock=clock,
        rng=random.Random(4),
    )

    class World:
        pass

    w = World()
    w.center, w.system, w.portal, w.clock = center, system, portal, clock
    return w


class TestNewUserJourney:
    """Sign up -> portal prompt -> pair by QR -> SSH with password+token."""

    def test_complete_soft_token_journey(self, world):
        center, portal, clock = world.center, world.portal, world.clock
        center.create_user("newphd", password="thesis!")

        # Portal login prompts for MFA setup.
        login = portal.login("newphd", "thesis!")
        assert login.needs_mfa_prompt

        # Pair: scan the QR, confirm with the first code.
        session, qr = portal.begin_soft_pairing("newphd")
        uri = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        phone_app = TOTPGenerator(secret=uri.secret, clock=clock)
        assert portal.confirm_pairing(session.session_id, phone_app.current_code())

        # SSH in: password first factor, token second.
        clock.advance(31)
        client = SSHClient("198.51.100.20")
        result, _ = client.connect(
            world.system.login_node(), "newphd",
            password="thesis!", token=phone_app.current_code,
        )
        assert result.success
        assert result.session_items["second_factor"] == "soft"

        # Audit trail exists end to end.
        uid = center.uid_of("newphd")
        assert center.otp.audit.entries(user_id=uid, action="validate")

    def test_journey_with_public_key(self, world):
        center, clock = world.center, world.clock
        center.create_user("poweruser", password="pw")
        _, secret = center.pair_soft("poweruser")
        device = TOTPGenerator(secret=secret, clock=clock)
        key = KeyPair.generate(rng=random.Random(5))
        node = world.system.login_node()
        node.authorize_key("poweruser", key)
        client = SSHClient("198.51.100.21")
        result, conversation = client.connect(
            node, "poweruser", key=key, token=device.current_code
        )
        assert result.success
        assert result.session_items["first_factor"] == "publickey"
        assert not any("assword" in p for p in conversation.prompts_seen)


class TestSMSUserJourney:
    def test_complete_sms_journey(self, world):
        center, portal, clock = world.center, world.portal, world.clock
        center.create_user("texter", password="pw")
        session = portal.begin_sms_pairing("texter", "5125554321")
        clock.advance(10)
        code = center.sms_gateway.latest("5125554321").body.split()[-1]
        assert portal.confirm_pairing(session.session_id, code)

        def read_sms():
            clock.advance(10)
            return center.sms_gateway.latest("5125554321").body.split()[-1]

        client = SSHClient("198.51.100.22")
        result, conversation = client.connect(
            world.system.login_node(), "texter",
            password="pw", extra_answers={"token code": read_sms},
        )
        assert result.success
        assert any("sent" in m.lower() for m in conversation.displayed)

    def test_sms_costs_accrue(self, world):
        center, portal, clock = world.center, world.portal, world.clock
        center.create_user("texter", password="pw")
        portal.begin_sms_pairing("texter", "5125554321")
        assert center.sms_gateway.message_charges == pytest.approx(0.0075)


class TestHardTokenJourney:
    def test_order_ship_pair_login(self, world):
        center, portal, clock = world.center, world.portal, world.clock
        center.create_user("airgapped", password="pw")
        batch = center.receive_hard_batch(10)
        store = HardTokenStore(batch, clock)
        order = store.order("airgapped", "Switzerland")
        clock.advance(11 * 86400)
        serial = store.delivered_serial("airgapped")
        assert serial == order.serial
        session = portal.begin_hard_pairing("airgapped", serial)
        fob = TOTPGenerator(secret=batch.secret_for(serial), clock=clock)
        assert portal.confirm_pairing(session.session_id, fob.current_code())
        clock.advance(31)
        client = SSHClient("203.0.113.77")
        result, _ = client.connect(
            world.system.login_node(), "airgapped",
            password="pw", token=fob.current_code,
        )
        assert result.success


class TestTrainingAccountJourney:
    def test_workshop_static_codes(self, world):
        """Training accounts: staff assign a static code per session, the
        participants log in with it, staff regenerate afterwards."""
        center, clock = world.center, world.clock
        center.create_user("train01", password="workshop",
                           account_class=AccountClass.TRAINING)
        code = center.pair_training("train01")
        client = SSHClient("198.51.100.30")
        result, _ = client.connect(
            world.system.login_node(), "train01", password="workshop", token=code
        )
        assert result.success
        # After the session, the code is rotated; the old one is dead.
        center.otp.enroll_static(center.uid_of("train01"), "999999")
        clock.advance(31)
        result, _ = client.connect(
            world.system.login_node(), "train01", password="workshop", token=code
        )
        assert not result.success


class TestGatewayJourney:
    def test_gateway_automation_uninterrupted(self, world):
        """Gateways keep running through every phase: pubkey + exemption."""
        center = world.center
        center.create_user("sciencegw", account_class=AccountClass.GATEWAY)
        key = KeyPair.generate(rng=random.Random(6))
        node = world.system.login_node()
        node.authorize_key("sciencegw", key)
        world.system.add_exemption(accounts="sciencegw", origins="203.0.113.0/24")
        client = SSHClient("203.0.113.50")
        # Works in paired mode...
        assert client.connect(node, "sciencegw", key=key)[0].success
        # ...and stays working when MFA goes mandatory.
        world.system.set_mode("full")
        ok = sum(
            1 for _ in range(10)
            if client.connect(node, "sciencegw", key=key, tty=False)[0].success
        )
        assert ok == 10

    def test_gateway_from_wrong_subnet_blocked_in_full(self, world):
        center = world.center
        center.create_user("sciencegw2", account_class=AccountClass.GATEWAY)
        key = KeyPair.generate(rng=random.Random(7))
        node = world.system.login_node()
        node.authorize_key("sciencegw2", key)
        world.system.add_exemption(accounts="sciencegw2", origins="203.0.113.0/24")
        world.system.set_mode("full")
        rogue = SSHClient("8.8.8.8")  # outside the exempted range
        assert not rogue.connect(node, "sciencegw2", key=key)[0].success


class TestDeviceReplacementJourney:
    def test_new_phone_flow(self, world):
        """Unpair with the old device, pair the new one."""
        center, portal, clock = world.center, world.portal, world.clock
        center.create_user("upgrader", password="pw")
        session, qr = portal.begin_soft_pairing("upgrader")
        old_uri = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        old_phone = TOTPGenerator(secret=old_uri.secret, clock=clock)
        portal.confirm_pairing(session.session_id, old_phone.current_code())

        clock.advance(31)
        unpair = portal.begin_unpair("upgrader")
        assert portal.confirm_unpair(unpair, old_phone.current_code())

        session, qr = portal.begin_soft_pairing("upgrader")
        new_uri = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        assert new_uri.secret != old_uri.secret  # a fresh secret
        new_phone = TOTPGenerator(secret=new_uri.secret, clock=clock)
        clock.advance(31)
        assert portal.confirm_pairing(session.session_id, new_phone.current_code())

    def test_lost_phone_flow(self, world):
        center, portal, clock = world.center, world.portal, world.clock
        center.create_user("loser", password="pw")
        center.pair_soft("loser")
        url = portal.request_unpair_email("loser")
        assert portal.visit_unpair_url(url)
        # Old pairing gone; the user can pair a new device.
        assert center.identity.get("loser").pairing_status.value == "unpaired"
        session, qr = portal.begin_soft_pairing("loser")
        uri = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        device = TOTPGenerator(secret=uri.secret, clock=clock)
        assert portal.confirm_pairing(session.session_id, device.current_code())

"""Paper-claims index: one test per direct quote from the paper.

Most of these behaviours have deeper tests elsewhere; this file is the
navigable cross-reference between the paper's sentences and the library,
so a reviewer can check any quoted claim in one place.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.ssh import KeyPair, SSHClient


@pytest.fixture
def world():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(1))
    system = center.add_system("stampede", mode="full")
    center.create_user("alice", password="pw")
    _, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)

    class World:
        pass

    w = World()
    w.clock, w.center, w.system, w.device = clock, center, system, device
    w.node = system.login_node()
    return w


class TestSection1:
    def test_three_token_options_plus_first_factor(self, world):
        """"users a choice between three additional, mutually exclusive
        authentication options" — soft, SMS, hard; one pairing at a time."""
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError, match="already has a token"):
            world.center.pair_sms("alice", "5125550000")

    def test_six_digit_timed_code(self, world):
        """"a six digit, timed-based one time password"."""
        code = world.device.current_code()
        assert len(code) == 6 and code.isdigit()
        assert world.device.step == 30


class TestSection3_1:
    def test_shared_unique_user_id(self, world):
        """"a unique user ID that becomes common to both databases"."""
        account = world.center.identity.get("alice")
        ldap_uid = world.center.identity.ldap.get(account.dn).first("uidNumber")
        assert ldap_uid == account.uid
        assert world.center.otp.has_pairing(account.uid)

    def test_threshold_of_20_consecutive_failures(self, world):
        """"A threshold of 20 consecutive failed attempts must occur before
        a user account is temporarily deactivated"."""
        uid = world.center.uid_of("alice")
        for _ in range(19):
            world.center.otp.validate(uid, "000000")
        assert not world.center.otp.is_locked(uid)
        world.center.otp.validate(uid, "000000")
        assert world.center.otp.is_locked(uid)

    def test_lockout_visible_to_staff(self, world):
        """"this information is available to staff via an internal
        website"."""
        uid = world.center.uid_of("alice")
        for _ in range(20):
            world.center.otp.validate(uid, "000000")
        assert world.center.otp.audit.lockout_events()


class TestSection3_2:
    def test_token_nullified_on_success(self, world):
        """"the provided token code is nullified"."""
        uid = world.center.uid_of("alice")
        code = world.device.current_code()
        assert world.center.otp.validate(uid, code).ok
        assert not world.center.otp.validate(uid, code).ok

    def test_token_remains_valid_on_mismatch(self, world):
        """"In the event of a token mismatch, the token code remains
        valid"."""
        uid = world.center.uid_of("alice")
        code = world.device.current_code()
        assert not world.center.otp.validate(uid, "000000").ok
        assert world.center.otp.validate(uid, code).ok


class TestSection3_3:
    def test_code_every_30_seconds(self, world):
        """"A code is generated every 30 seconds"."""
        first = world.device.current_code()
        world.clock.advance(30)
        assert world.device.current_code() != first

    def test_300_second_drift_tolerance(self, world):
        """"keep a time that does not drift more than ... 300 seconds"."""
        world.device.skew = 299
        uid = world.center.uid_of("alice")
        assert world.center.otp.validate(uid, world.device.current_code()).ok

    def test_twilio_pricing(self, world):
        """"a flat rate of $1 per month plus each US-based text message
        costs an additional $0.0075"."""
        gateway = world.center.sms_gateway
        assert gateway.pricing.monthly_flat == 1.00
        assert gateway.pricing.per_message_us == 0.0075

    def test_international_messages_cost_more(self, world):
        assert (
            world.center.sms_gateway.pricing.per_message_intl
            > world.center.sms_gateway.pricing.per_message_us
        )

    def test_hard_tokens_preprogrammed(self, world):
        """"came pre-programmed with a secret key, all of which were
        provided at the time of batch purchase"."""
        batch = world.center.receive_hard_batch(3)
        for serial in batch.serials():
            assert len(batch.secret_for(serial)) == 20

    def test_static_training_codes_regenerable(self, world):
        """"The static token codes are easily regenerated once the training
        session is finished"."""
        world.center.create_user("train01", password="x")
        old = world.center.pair_training("train01")
        new = world.center.pair_training("train01")
        uid = world.center.uid_of("train01")
        assert world.center.otp.validate(uid, new).ok
        assert not world.center.otp.validate(uid, old).ok


class TestSection3_4:
    def test_pubkey_info_not_provided_by_ssh(self, world):
        """"Information about the state of public key authentication is not
        provided from SSH to PAM" — the module greps the secure log."""
        key = KeyPair.generate(rng=random.Random(2))
        world.node.authorize_key("alice", key)
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            world.node, "alice", key=key, token=world.device.current_code
        )
        assert result.success
        entries = world.node.authlog.recent(60, event="accepted_publickey")
        assert entries  # the log entry is the only channel

    def test_password_retry_budget(self, world):
        """"up to a maximum of two more times before SSH disconnect"."""
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(world.node, "alice", password="wrong",
                                   token="000000")
        assert result.password_attempts == 3

    def test_default_deny_exemptions(self, world):
        """"By default, all accounts are subject to multi-factor
        authentication and are denied an MFA exemption"."""
        assert not world.system.acl.check("alice", "198.51.100.7")

    def test_intra_system_traffic_free(self, world):
        """"an MFA exemption is configured to allow any SSH traffic to move
        freely from IP addresses that are a part of that particular
        system"."""
        internal = SSHClient(f"{world.system.ip_prefix}.77")
        result, _ = internal.connect(world.node, "alice", password="pw")
        assert result.success and result.session_items.get("mfa_exempt")

    def test_config_error_defaults_to_full(self, world):
        """"if any configuration errors occur, the token module defaults to
        the fourth enforcement mode"."""
        from repro.pam.modules.token import EnforcementMode, MFATokenModule

        module = MFATokenModule(
            ldap=world.center.identity.ldap,
            radius=world.center.new_radius_client("10.3.1.5"),
            mode="not-a-mode",
        )
        assert module.effective_mode is EnforcementMode.FULL


class TestSection5:
    def test_multiplexing_one_auth_many_connections(self, world):
        """"one connection to be established via MFA and subsequent
        connections to the same host to utilize the already existing SSH
        connection"."""
        client = SSHClient("198.51.100.7", multiplex=True)
        result, _ = client.connect(
            world.node, "alice", password="pw", token=world.device.current_code
        )
        accepted = world.node.logins_accepted
        assert client.run_batch(world.node, "alice", 5) == 5
        assert world.node.logins_accepted == accepted  # no re-auth


class TestConclusions:
    def test_over_half_a_million_logins_headroom(self, world):
        """"With over half a million successful log ins and counting" —
        the audit log can absorb that volume (spot-check the counters)."""
        uid = world.center.uid_of("alice")
        for _ in range(100):
            world.clock.advance(31)
            assert world.center.otp.validate(uid, world.device.current_code()).ok
        assert world.center.otp.audit.success_count("validate") == 100

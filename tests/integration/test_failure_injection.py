"""Failure injection across the stack: outages, loss, drift, lockouts."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.sms_gateway import CarrierProfile, SMSGateway
from repro.otpserver.server import OTPServer
from repro.ssh import SSHClient


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


def build(clock, **kwargs):
    center = MFACenter(clock=clock, rng=random.Random(7), **kwargs)
    system = center.add_system("stampede", mode="full")
    center.create_user("alice", password="pw")
    _, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)
    return center, system, device


class TestRADIUSOutages:
    def test_one_server_down_logins_continue(self, clock):
        center, system, device = build(clock)
        center.fabric.set_down(center.radius_servers[0].address)
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success

    def test_two_of_three_down_logins_continue(self, clock):
        center, system, device = build(clock)
        for server in center.radius_servers[:2]:
            center.fabric.set_down(server.address)
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success

    def test_all_down_denies_with_message(self, clock):
        center, system, device = build(clock)
        for server in center.radius_servers:
            center.fabric.set_down(server.address)
        client = SSHClient("198.51.100.7")
        result, conversation = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert not result.success
        assert any("unavailable" in m for m in conversation.displayed)

    def test_recovery_restores_service(self, clock):
        center, system, device = build(clock)
        for server in center.radius_servers:
            center.fabric.set_down(server.address)
        client = SSHClient("198.51.100.7")
        client.connect(system.login_node(), "alice", password="pw",
                       token=device.current_code)
        for server in center.radius_servers:
            center.fabric.set_down(server.address, False)
        clock.advance(31)
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success


class TestPacketLoss:
    def test_logins_survive_lossy_network(self, clock):
        center, system, device = build(clock, fabric_loss_rate=0.25)
        client = SSHClient("198.51.100.7")
        successes = 0
        for _ in range(20):
            clock.advance(31)
            result, _ = client.connect(
                system.login_node(), "alice", password="pw",
                token=device.current_code,
            )
            successes += bool(result.success)
        assert successes >= 18


class TestClockDrift:
    def test_moderate_drift_tolerated(self, clock):
        center, system, device = build(clock)
        device.skew = 250  # inside the 300 s tolerance
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success

    def test_excess_drift_denied_then_resynced(self, clock):
        center, system, device = build(clock)
        device.skew = 1200  # 20 minutes fast
        client = SSHClient("198.51.100.7")
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert not result.success
        # Staff resync from two consecutive device codes (the admin UI op).
        uid = center.uid_of("alice")
        code1 = device.current_code()
        code2 = device.code_at(clock.now() + 30)
        assert center.otp.resync(uid, code1, code2)
        clock.advance(60)
        result, _ = client.connect(
            system.login_node(), "alice", password="pw", token=device.current_code
        )
        assert result.success


class TestLockoutRecovery:
    def test_brute_force_locks_then_staff_clears(self, clock):
        center, system, device = build(clock)
        client = SSHClient("198.51.100.7")
        node = system.login_node()
        # An attacker who knows the password burns 20 token guesses.
        for _ in range(20):
            result, _ = client.connect(node, "alice", password="pw", token="000000")
            assert not result.success
        # Now even the right code is refused: the account is deactivated.
        clock.advance(31)
        result, _ = client.connect(node, "alice", password="pw",
                                   token=device.current_code)
        assert not result.success
        # Staff see the lockout and clear it.
        assert center.otp.audit.lockout_events()
        center.otp.clear_failcount(center.uid_of("alice"))
        clock.advance(31)
        result, _ = client.connect(node, "alice", password="pw",
                                   token=device.current_code)
        assert result.success

    def test_wrong_password_does_not_reach_linotp(self, clock):
        """First-factor gating: token-code guesses require the password."""
        center, system, _ = build(clock)
        client = SSHClient("198.51.100.7")
        before = center.otp.validate_requests
        for _ in range(10):
            client.connect(system.login_node(), "alice",
                           password="wrong", token="000000")
        assert center.otp.validate_requests == before


class TestDelayedSMS:
    def test_stalled_sms_delivers_expired_code(self, clock):
        """The Section 5 carrier failure, reproduced end to end."""
        gateway = SMSGateway(
            clock,
            carrier=CarrierProfile(stall_probability=1.0, stall_delay=600.0),
            rng=random.Random(1),
        )
        otp = OTPServer(clock=clock, sms_gateway=gateway, rng=random.Random(2))
        otp.enroll_sms("carol", "5125551234")
        assert otp.validate("carol", None).status.value == "challenge_sent"
        # The message is stuck at the carrier past the 300 s validity.
        clock.advance(1300)
        message = gateway.latest("5125551234")
        assert message is not None  # it did eventually arrive...
        code = message.body.split()[-1]
        result = otp.validate("carol", code)
        assert not result.ok  # ...but the code had already expired
        # The user simply requests a fresh one.
        assert otp.validate("carol", None).status.value == "challenge_sent"


class TestReplayAttacks:
    def test_sniffed_code_cannot_be_replayed(self, clock):
        center, system, device = build(clock)
        client = SSHClient("198.51.100.7")
        attacker = SSHClient("203.0.113.66")
        node = system.login_node()
        sniffed = device.current_code()
        result, _ = client.connect(node, "alice", password="pw", token=sniffed)
        assert result.success
        # The attacker has the password AND the just-used code: still denied.
        result, _ = attacker.connect(node, "alice", password="pw", token=sniffed)
        assert not result.success

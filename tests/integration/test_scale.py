"""Scale test: hundreds of users through the full authentication path.

Exercises the paper's scalability claim at test-suite-friendly size:
every enrollment and login runs the complete SSH→PAM→RADIUS→OTP stack,
and the back-end state (audit, accounting of successes, LDAP) stays
consistent throughout.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.ssh import SSHClient


@pytest.fixture(scope="module")
def deployment():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(99))
    system = center.add_system("stampede", login_nodes=4, mode="full")
    rng = random.Random(100)
    users = []
    for i in range(150):
        name = f"scale{i:03d}"
        center.create_user(name, password=f"pw-{name}")
        if i % 3 == 2:
            center.pair_sms(name, f"512555{i:04d}")
            users.append((name, "sms", None))
        else:
            _, secret = center.pair_soft(name)
            users.append((name, "soft", TOTPGenerator(secret=secret, clock=clock)))
    _ = rng

    class Deployment:
        pass

    d = Deployment()
    d.clock, d.center, d.system, d.users = clock, center, system, users
    return d


class TestScale:
    def test_every_user_can_log_in(self, deployment):
        clock = deployment.clock
        gateway = deployment.center.sms_gateway
        successes = 0
        for index, (name, kind, device) in enumerate(deployment.users):
            clock.advance(31)
            node = deployment.system.daemons[index % 4]
            client = SSHClient(f"198.51.{index % 200}.{(index % 250) + 1}")
            if kind == "soft":
                result, _ = client.connect(
                    node, name, password=f"pw-{name}", token=device.current_code
                )
            else:
                phone = f"512555{index:04d}"

                def read_sms(phone=phone):
                    clock.advance(20)
                    message = gateway.latest(phone)
                    return message.body.split()[-1] if message else "000000"

                result, _ = client.connect(
                    node, name, password=f"pw-{name}",
                    extra_answers={"token code": read_sms},
                )
            successes += bool(result.success)
        assert successes == len(deployment.users)

    def test_audit_counts_match(self, deployment):
        audit = deployment.center.otp.audit
        assert audit.success_count("validate") >= len(deployment.users)

    def test_load_spread_over_radius_farm(self, deployment):
        handled = [s.handled for s in deployment.center.radius_servers]
        assert all(h > 10 for h in handled)
        assert max(handled) < 3 * min(handled)

    def test_repeat_login_burst(self, deployment):
        """One user hammering logins (a tight retry loop) stays correct."""
        name, _, device = next(
            u for u in deployment.users if u[1] == "soft"
        )
        client = SSHClient("198.51.250.1")
        node = deployment.system.login_node()
        ok = 0
        for _ in range(50):
            deployment.clock.advance(31)
            result, _ = client.connect(
                node, name, password=f"pw-{name}", token=device.current_code
            )
            ok += bool(result.success)
        assert ok == 50

    def test_ldap_consistency_at_scale(self, deployment):
        identity = deployment.center.identity
        for name, kind, _ in deployment.users:
            assert identity.pairing_type(name).value == kind

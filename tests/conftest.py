"""Shared fixtures for the test suite.

Every fixture is deterministic: clocks are simulated and RNGs are seeded,
so the whole suite replays identically.
"""

from __future__ import annotations

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core import MFACenter


@pytest.fixture
def clock() -> SimulatedClock:
    """A clock parked mid-rollout (phase 3, MFA mandatory)."""
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def center(clock, rng) -> MFACenter:
    """A wired MFACenter with one full-enforcement system."""
    center = MFACenter(clock=clock, rng=rng)
    center.add_system("stampede", mode="full")
    return center

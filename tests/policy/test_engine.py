"""PolicyEngine: the ladder, exemptions, admission control, snapshots."""

from datetime import datetime, timezone

import pytest

from repro.common.clock import SimulatedClock
from repro.policy import (
    AuthRequest,
    EnforcementLadder,
    EnforcementMode,
    LockoutPolicy,
    PolicyAction,
    PolicyEngine,
    RateLimitConfig,
)
from repro.telemetry import Registry


def _at(iso: str) -> datetime:
    return datetime.fromisoformat(iso).replace(tzinfo=timezone.utc)


class FakeACL:
    """Duck-typed stand-in for ExemptionACL: check(), rules(), last_error."""

    last_error = None

    def __init__(self, granted=()):
        self.granted = set(granted)

    def check(self, username, ip):
        return username in self.granted

    def rules(self):
        return []


class TestEnforcementLadder:
    def test_all_four_modes_parse(self):
        for mode in ("off", "paired", "full"):
            ladder = EnforcementLadder(mode)
            assert ladder.configured_mode is EnforcementMode(mode)
            assert not ladder.config_error
        ladder = EnforcementLadder("countdown", "2016-11-01")
        assert ladder.configured_mode is EnforcementMode.COUNTDOWN
        assert not ladder.config_error

    def test_unknown_mode_fails_closed(self):
        ladder = EnforcementLadder("audit-only")
        assert ladder.configured_mode is EnforcementMode.FULL
        assert ladder.config_error

    def test_bad_deadline_fails_closed(self):
        ladder = EnforcementLadder("countdown", "next tuesday")
        assert ladder.configured_mode is EnforcementMode.FULL
        assert ladder.config_error

    def test_countdown_without_deadline_fails_closed(self):
        ladder = EnforcementLadder("countdown")
        assert ladder.configured_mode is EnforcementMode.FULL
        assert ladder.config_error

    def test_countdown_expires_into_full(self):
        ladder = EnforcementLadder("countdown", "2016-11-01")
        assert ladder.effective_mode(_at("2016-10-05")) is EnforcementMode.COUNTDOWN
        assert ladder.effective_mode(_at("2016-11-01")) is EnforcementMode.FULL
        assert ladder.effective_mode(_at("2017-01-01")) is EnforcementMode.FULL

    def test_days_left_rounds_up_and_floors_at_zero(self):
        ladder = EnforcementLadder("countdown", "2016-11-01")
        assert ladder.days_left(_at("2016-10-31T23:00:00")) == 1
        assert ladder.days_left(_at("2016-10-22")) == 10
        assert ladder.days_left(_at("2016-12-25")) == 0


class TestLockoutPolicy:
    def test_boundary_is_inclusive(self):
        policy = LockoutPolicy(threshold=20)
        assert not policy.is_lockout(19)
        assert policy.is_lockout(20)
        assert policy.is_lockout(21)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LockoutPolicy(threshold=0)


class TestEvaluate:
    def _engine(self, **kwargs):
        kwargs.setdefault("clock", SimulatedClock.at("2016-10-05T09:00:00"))
        return PolicyEngine(**kwargs)

    def test_off_mode_allows_without_pairing_lookup(self):
        def explode(username):
            raise AssertionError("off mode must not query the directory")

        engine = self._engine(ladder=EnforcementLadder("off"))
        decision = engine.evaluate(
            AuthRequest("alice", "1.2.3.4", pairing_lookup=explode)
        )
        assert decision.action is PolicyAction.ALLOW
        assert decision.mode is EnforcementMode.OFF
        assert decision.allows_entry

    def test_paired_mode_allows_unpaired(self):
        engine = self._engine(ladder=EnforcementLadder("paired"))
        decision = engine.evaluate(
            AuthRequest("alice", pairing_lookup=lambda u: None)
        )
        assert decision.action is PolicyAction.ALLOW
        assert decision.pairing_resolved

    def test_paired_mode_challenges_paired(self):
        engine = self._engine(ladder=EnforcementLadder("paired"))
        decision = engine.evaluate(AuthRequest("alice", pairing="soft"))
        assert decision.action is PolicyAction.CHALLENGE
        assert decision.pairing == "soft"
        assert not decision.allows_entry

    def test_countdown_notifies_unpaired_with_days(self):
        engine = self._engine(
            ladder=EnforcementLadder("countdown", "2016-10-15")
        )
        decision = engine.evaluate(AuthRequest("alice", pairing_lookup=lambda u: None))
        assert decision.action is PolicyAction.NOTIFY
        assert decision.countdown_days == 10

    def test_full_mode_challenges_everyone(self):
        engine = self._engine()
        unpaired = engine.evaluate(AuthRequest("alice", pairing_lookup=lambda u: None))
        assert unpaired.action is PolicyAction.CHALLENGE
        assert unpaired.pairing is None
        paired = engine.evaluate(AuthRequest("bob", pairing="sms"))
        assert paired.action is PolicyAction.CHALLENGE
        assert paired.pairing == "sms"

    def test_exemption_wins_over_ladder(self):
        engine = self._engine(exemptions=FakeACL(granted={"staff"}))
        decision = engine.evaluate(AuthRequest("staff", "10.0.0.1", pairing="soft"))
        assert decision.action is PolicyAction.EXEMPT
        assert engine.evaluate(AuthRequest("other", pairing="soft")).action is (
            PolicyAction.CHALLENGE
        )

    def test_throttle_precedes_exemption(self):
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        engine = self._engine(
            clock=clock,
            exemptions=FakeACL(granted={"staff"}),
            rate_limit=RateLimitConfig(rate=1.0, burst=2.0),
        )
        request = AuthRequest("staff", "198.51.100.9", pairing="soft")
        assert engine.evaluate(request).action is PolicyAction.EXEMPT
        assert engine.evaluate(request).action is PolicyAction.EXEMPT
        throttled = engine.evaluate(request)
        assert throttled.action is PolicyAction.THROTTLE
        assert "rate limit" in throttled.reason

    def test_empty_source_never_throttled(self):
        engine = self._engine(rate_limit=RateLimitConfig(rate=1.0, burst=1.0))
        for _ in range(5):
            decision = engine.evaluate(AuthRequest("alice", "", pairing="soft"))
            assert decision.action is PolicyAction.CHALLENGE

    def test_decision_counter_increments(self):
        telemetry = Registry()
        engine = self._engine(telemetry=telemetry)
        engine.evaluate(AuthRequest("alice", pairing="soft"))
        engine.evaluate(AuthRequest("bob", pairing_lookup=lambda u: None))
        counter = telemetry.counter("policy_decisions_total", "")
        assert counter.value(action="challenge") == 2


class TestVirtualClockAdmission:
    """Regression: the engine must never let its limiter refill on a
    different clock than the one driving evaluation."""

    def test_ready_limiter_rebound_onto_engine_clock(self):
        from repro.policy import TokenBucketLimiter

        clock = SimulatedClock.at("2016-10-05T09:00:00")
        # A limiter built without a clock silently sat on wall time; the
        # engine must adopt it onto its own (virtual) clock at wiring.
        limiter = TokenBucketLimiter(RateLimitConfig(rate=1.0, burst=2.0))
        engine = PolicyEngine(rate_limit=limiter, clock=clock)
        assert limiter.clock_injected
        request = AuthRequest("alice", "198.51.100.9", pairing="soft")
        assert engine.evaluate(request).action is PolicyAction.CHALLENGE
        assert engine.evaluate(request).action is PolicyAction.CHALLENGE
        assert engine.evaluate(request).action is PolicyAction.THROTTLE
        clock.advance(1.0)  # virtual second -> one token; wall time is free
        assert engine.evaluate(request).action is PolicyAction.CHALLENGE
        assert engine.evaluate(request).action is PolicyAction.THROTTLE

    def test_explicitly_clocked_limiter_left_alone(self):
        from repro.common.clock import SystemClock
        from repro.policy import TokenBucketLimiter

        wall = SystemClock()
        limiter = TokenBucketLimiter(RateLimitConfig(rate=1.0, burst=2.0), clock=wall)
        PolicyEngine(
            rate_limit=limiter, clock=SimulatedClock.at("2016-10-05T09:00:00")
        )
        assert limiter._clock is wall  # the caller's choice is respected

    def test_evaluate_now_threads_into_admission(self):
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        engine = PolicyEngine(
            rate_limit=RateLimitConfig(rate=1.0, burst=1.0), clock=clock
        )
        request = AuthRequest("alice", "198.51.100.9", pairing="soft")
        start = clock.now()
        assert engine.evaluate(request, now=start).action is PolicyAction.CHALLENGE
        assert engine.evaluate(request, now=start).action is PolicyAction.THROTTLE
        # The caller's timestamp alone drives the refill — the engine's
        # clock has not moved, yet admission follows the handed-in time.
        later = engine.evaluate(request, now=start + 1.0)
        assert later.action is PolicyAction.CHALLENGE

    def test_admit_accepts_explicit_now(self):
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        engine = PolicyEngine(
            rate_limit=RateLimitConfig(rate=1.0, burst=1.0), clock=clock
        )
        start = clock.now()
        assert engine.admit("198.51.100.9", now=start)
        assert not engine.admit("198.51.100.9", now=start)
        assert engine.admit("198.51.100.9", now=start + 1.0)


class TestLiveReconfiguration:
    def test_set_ladder_switches_phase(self):
        engine = PolicyEngine(clock=SimulatedClock.at("2016-10-05T09:00:00"))
        request = AuthRequest("alice", pairing_lookup=lambda u: None)
        assert engine.evaluate(request).action is PolicyAction.CHALLENGE
        engine.set_ladder("paired")
        assert engine.evaluate(request).action is PolicyAction.ALLOW


class TestSnapshot:
    def test_shape_without_optional_families(self):
        engine = PolicyEngine(clock=SimulatedClock.at("2016-10-05T09:00:00"))
        snap = engine.snapshot()
        assert snap["ladder"]["effective_mode"] == "full"
        assert snap["lockout"] == {"threshold": 20}
        assert snap["exemptions"] == {"configured": False}
        assert snap["rate_limit"] == {"configured": False}

    def test_countdown_effective_mode_reflects_now(self):
        clock = SimulatedClock.at("2016-12-01T00:00:00")
        engine = PolicyEngine(
            ladder=EnforcementLadder("countdown", "2016-11-01"), clock=clock
        )
        snap = engine.snapshot()
        assert snap["ladder"]["configured_mode"] == "countdown"
        assert snap["ladder"]["effective_mode"] == "full"

    def test_file_backed_acl_snapshot(self, tmp_path):
        acl_file = tmp_path / "exemptions.acl"
        acl_file.write_text(
            "+:alice:10.0.0.0/8:ALL\n-:ALL:192.0.2.0/24:ALL\n"
        )
        from repro.pam.acl import ExemptionACL

        clock = SimulatedClock.at("2016-10-05T09:00:00")
        engine = PolicyEngine(
            exemptions=ExemptionACL(str(acl_file), clock=clock), clock=clock
        )
        snap = engine.snapshot()["exemptions"]
        assert snap == {
            "configured": True,
            "rules": 2,
            "grants": 1,
            "denials": 1,
            "last_error": None,
        }

    def test_rate_limit_snapshot(self):
        engine = PolicyEngine(
            clock=SimulatedClock.at("2016-10-05T09:00:00"),
            rate_limit=RateLimitConfig(rate=5.0, burst=10.0),
        )
        engine.evaluate(AuthRequest("alice", "1.2.3.4", pairing="soft"))
        snap = engine.snapshot()["rate_limit"]
        assert snap["configured"]
        assert snap["rate"] == 5.0
        assert snap["burst"] == 10.0
        assert snap["sources_tracked"] == 1

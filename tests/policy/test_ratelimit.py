"""Token-bucket admission control: burst, refill, per-source isolation."""

import pytest

from repro.common.clock import SimulatedClock
from repro.policy import RateLimitConfig, TokenBucketLimiter


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def limiter(clock):
    return TokenBucketLimiter(RateLimitConfig(rate=2.0, burst=4.0), clock=clock)


class TestConfig:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            RateLimitConfig(rate=0.0)

    def test_burst_must_cover_one_request(self):
        with pytest.raises(ValueError):
            RateLimitConfig(burst=0.5)


class TestBucket:
    def test_burst_then_refusal(self, limiter):
        source = "198.51.100.7"
        assert all(limiter.allow(source) for _ in range(4))
        assert not limiter.allow(source)
        assert limiter.throttled_total == 1

    def test_refill_restores_admission(self, limiter, clock):
        source = "198.51.100.7"
        for _ in range(4):
            limiter.allow(source)
        assert not limiter.allow(source)
        clock.advance(1.0)  # rate=2/s -> 2 tokens back
        assert limiter.allow(source)
        assert limiter.allow(source)
        assert not limiter.allow(source)

    def test_refusals_do_not_drain(self, limiter, clock):
        source = "203.0.113.5"
        for _ in range(4):
            limiter.allow(source)
        for _ in range(50):  # hammering while empty must not dig a hole
            assert not limiter.allow(source)
        clock.advance(0.5)  # exactly one token refilled
        assert limiter.allow(source)
        assert not limiter.allow(source)

    def test_refill_caps_at_burst(self, limiter, clock):
        source = "198.51.100.7"
        limiter.allow(source)
        clock.advance(3600.0)
        assert limiter.tokens_available(source) == 4.0

    def test_sources_are_independent(self, limiter):
        for _ in range(4):
            assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")

    def test_unseen_source_starts_full(self, limiter):
        assert limiter.tokens_available("never-seen") == 4.0

    def test_snapshot(self, limiter):
        for _ in range(5):
            limiter.allow("a")
        limiter.allow("b")
        assert limiter.snapshot() == {
            "rate": 2.0,
            "burst": 4.0,
            "sources_tracked": 2,
            "throttled_total": 1,
        }


class TestVirtualClockConsistency:
    """Regression: a limiter must refill on the clock its deployment runs
    on, never fall back to a second wall-clock read mid-simulation."""

    def test_clock_injected_flag(self, clock):
        assert TokenBucketLimiter(RateLimitConfig(), clock=clock).clock_injected
        assert not TokenBucketLimiter(RateLimitConfig()).clock_injected

    def test_bind_clock_adopts_virtual_time(self, clock):
        limiter = TokenBucketLimiter(RateLimitConfig(rate=1.0, burst=2.0))
        limiter.bind_clock(clock)
        assert limiter.clock_injected
        source = "198.51.100.7"
        assert limiter.allow(source)
        assert limiter.allow(source)
        assert not limiter.allow(source)
        # The wall clock barely moved; only virtual time may refill.
        clock.advance(1.0)
        assert limiter.allow(source)
        assert not limiter.allow(source)

    def test_explicit_now_overrides_clock_read(self, clock):
        limiter = TokenBucketLimiter(RateLimitConfig(rate=1.0, burst=1.0), clock=clock)
        start = clock.now()
        assert limiter.allow("s", now=start)
        assert not limiter.allow("s", now=start)
        # The caller's timestamp drives refill, not a fresh clock read.
        assert limiter.allow("s", now=start + 1.0)
        assert limiter.tokens_available("s", now=start + 1.0) == 0.0
        assert limiter.tokens_available("s", now=start + 2.0) == 1.0

    def test_cost_parameter_drains_multiple_tokens(self, clock):
        limiter = TokenBucketLimiter(RateLimitConfig(rate=1.0, burst=4.0), clock=clock)
        assert limiter.allow("s", cost=3.0)
        assert not limiter.allow("s", cost=3.0)
        assert limiter.allow("s", cost=1.0)

    def test_stale_now_never_refunds(self, clock):
        # A caller handing in an older timestamp (clock already advanced by
        # a parallel path) must not make tokens reappear.
        limiter = TokenBucketLimiter(RateLimitConfig(rate=1.0, burst=1.0), clock=clock)
        start = clock.now()
        assert limiter.allow("s", now=start + 10.0)
        assert not limiter.allow("s", now=start)

"""The risk stage inside the policy engine: one verdict for every layer.

Covers the tentpole wiring: STEP_UP withholding the exemption grant (at
the engine and in the PAM stack), DENY short-circuiting before lockout
counters move, the risk block in ``GET /admin/policy``, and the stage's
flag log.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.digest_auth import DigestCredentials
from repro.extensions.risk import RiskAction, RiskEngine, RiskWeights
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.otpserver.results import ValidateStatus
from repro.otpserver.server import OTPServer
from repro.pam.framework import PAMResult, PAMSession
from repro.pam.modules.exemption import MFAExemptionModule
from repro.policy import (
    AuthRequest,
    EnforcementLadder,
    PolicyAction,
    PolicyEngine,
    RiskStage,
)

ATTACKER_IP = "203.0.113.9"
HOME_IP = "198.51.100.7"


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T12:00:00")


def watchlisted_stage(clock, deny=False):
    """A stage whose verdict for the attacker subnet is fixed: STEP_UP by
    default, DENY when the watchlist weight is raised past the bar."""
    weights = RiskWeights(watchlisted_network=1.0) if deny else None
    stage = RiskStage(RiskEngine(clock=clock, weights=weights))
    stage.add_watchlist("203.0.113.0/24")
    return stage


class GrantAll:
    last_error = None

    def check(self, username, ip):
        return True

    def rules(self):
        return []


class TestAdoption:
    def test_bare_engine_is_wrapped(self, clock):
        policy = PolicyEngine(clock=clock, risk=RiskEngine(clock=clock))
        assert isinstance(policy.risk, RiskStage)

    def test_uninjected_stage_adopts_engine_clock(self, clock):
        stage = RiskStage()
        assert stage.clock_injected is False
        PolicyEngine(clock=clock, risk=stage)
        assert stage.clock_injected is True

    def test_set_risk_bumps_version(self, clock):
        policy = PolicyEngine(clock=clock)
        assert policy.risk is None
        before = policy.version
        policy.set_risk(RiskStage(RiskEngine(clock=clock)))
        assert policy.risk is not None
        assert policy.version == before + 1


class TestStepUp:
    def test_step_up_withholds_exemption(self, clock):
        """An exemption-ACL'd account still faces the second factor when
        the risk stage says step up."""
        policy = PolicyEngine(
            exemptions=GrantAll(), clock=clock, risk=watchlisted_stage(clock)
        )
        home = policy.evaluate(AuthRequest("alice", HOME_IP, pairing="soft"))
        assert home.action is PolicyAction.EXEMPT
        risky = policy.evaluate(AuthRequest("alice", ATTACKER_IP, pairing="soft"))
        assert risky.action is PolicyAction.CHALLENGE
        assert risky.risk_action == RiskAction.STEP_UP.value
        assert "watchlisted_network" in risky.risk_signals

    def test_step_up_upgrades_off_mode_for_paired_user(self, clock):
        policy = PolicyEngine(
            ladder=EnforcementLadder("off"),
            clock=clock,
            risk=watchlisted_stage(clock),
        )
        quiet = policy.evaluate(AuthRequest("alice", HOME_IP, pairing="soft"))
        assert quiet.action is PolicyAction.ALLOW
        risky = policy.evaluate(AuthRequest("alice", ATTACKER_IP, pairing="soft"))
        assert risky.action is PolicyAction.CHALLENGE

    def test_unpaired_user_cannot_be_stepped_up(self, clock):
        """Nothing to step up to: the ladder outcome stands, flagged."""
        stage = watchlisted_stage(clock)
        policy = PolicyEngine(
            ladder=EnforcementLadder("paired"), clock=clock, risk=stage
        )
        decision = policy.evaluate(AuthRequest("mallory", ATTACKER_IP, pairing=None))
        assert decision.action is PolicyAction.ALLOW
        assert decision.risk_action == RiskAction.STEP_UP.value
        assert stage.flags_for("mallory") == 1

    def test_pam_exemption_module_refuses_grant_on_step_up(self, clock):
        policy = PolicyEngine(
            exemptions=GrantAll(), clock=clock, risk=watchlisted_stage(clock)
        )
        module = MFAExemptionModule(policy)
        safe = PAMSession(username="alice", service="sshd", remote_ip=HOME_IP)
        assert module.authenticate(safe) is PAMResult.SUCCESS
        assert safe.items.get("mfa_exempt") is True
        risky = PAMSession(username="alice", service="sshd", remote_ip=ATTACKER_IP)
        assert module.authenticate(risky) is PAMResult.AUTH_ERR
        assert risky.items.get("risk_step_up") is True
        assert "mfa_exempt" not in risky.items


class TestDeny:
    def test_deny_decision_carries_reason_and_score(self, clock):
        policy = PolicyEngine(clock=clock, risk=watchlisted_stage(clock, deny=True))
        decision = policy.evaluate(AuthRequest("alice", ATTACKER_IP, pairing="soft"))
        assert decision.action is PolicyAction.DENY
        assert decision.risk_score == 1.0
        assert decision.reason.startswith("risk score")

    def test_deny_short_circuits_before_lockout_counters(self, clock):
        """A risk-denied attempt must not move the failure counter: the
        20-strike ledger records credential failures, not refusals."""
        stage = watchlisted_stage(clock, deny=True)
        server = OTPServer(
            clock=clock,
            rng=random.Random(7),
            policy=PolicyEngine(clock=clock, risk=stage),
        )
        server.enroll_soft("alice")

        denied = server.validate("alice", "000000", source=ATTACKER_IP)
        assert denied.status is ValidateStatus.REJECT
        assert denied.reason.startswith("risk score")
        assert server.user_tokens("alice")[0].failcount == 0

        rejected = server.validate("alice", "000000", source=HOME_IP)
        assert rejected.status is ValidateStatus.REJECT
        assert server.user_tokens("alice")[0].failcount == 1


class TestSnapshot:
    def test_snapshot_without_risk(self, clock):
        snap = PolicyEngine(clock=clock).snapshot()
        assert snap["risk"] == {"configured": False}

    def test_snapshot_with_risk_counters(self, clock):
        stage = watchlisted_stage(clock)
        policy = PolicyEngine(clock=clock, risk=stage)
        policy.evaluate(AuthRequest("alice", ATTACKER_IP, pairing="soft"))
        snap = policy.snapshot()["risk"]
        assert snap["configured"] is True
        assert snap["assessed"] == 1
        assert snap["step_ups"] == 1
        assert snap["denies"] == 0
        assert snap["flagged_users"] == 1
        assert snap["step_up_threshold"] == 0.3
        assert snap["deny_threshold"] == 0.7

    def test_admin_policy_route_reports_risk(self, clock):
        rng = random.Random(11)
        server = OTPServer(
            clock=clock,
            rng=rng,
            policy=PolicyEngine(clock=clock, risk=watchlisted_stage(clock)),
        )
        api = AdminAPI(server, rng=rng)
        api.add_admin("portal", "secret")
        client = AdminAPIClient(api, "portal", "secret", rng=rng)
        server.enroll_soft("alice")
        server.validate("alice", "123456", source=ATTACKER_IP)
        body = client.call("GET", "/admin/policy")
        assert body["risk"]["configured"] is True
        assert body["risk"]["assessed"] >= 1
        assert body["risk"]["flagged_users"] >= 0


class TestFlagLog:
    def test_flag_log_eviction_keeps_counts(self, clock):
        stage = RiskStage(
            RiskEngine(clock=clock), flag_log_limit=4
        )
        stage.add_watchlist("203.0.113.0/24")
        for i in range(10):
            stage.evaluate(f"user{i}", ATTACKER_IP)
        assert len(stage.flagged()) == 4
        # Eviction trims the detailed log, never the per-user counts.
        assert stage.flags_for("user0") == 1
        assert sum(stage.snapshot()["flagged_users"] for _ in (1,)) == 10

    def test_honeytoken_alarm_flags_at_full_score(self, clock):
        stage = RiskStage(RiskEngine(clock=clock))
        stage.raise_alarm("decoy1", ATTACKER_IP, serial="LSHY0001", accepted=True)
        entry = stage.flagged()[-1]
        assert entry["action"] == "honeytoken"
        assert entry["score"] == 1.0
        assert stage.snapshot()["honeytoken_alarms"] == 1

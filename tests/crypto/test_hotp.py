"""HOTP: RFC 4226 vectors, verification windows, parameter validation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hotp import hotp, verify_hotp

SECRET = b"12345678901234567890"

# RFC 4226 appendix D.
RFC_CODES = [
    "755224", "287082", "359152", "969429", "338314",
    "254676", "287922", "162583", "399871", "520489",
]


class TestRFCVectors:
    @pytest.mark.parametrize("counter,code", list(enumerate(RFC_CODES)))
    def test_vector(self, counter, code):
        assert hotp(SECRET, counter) == code


class TestParameters:
    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            hotp(SECRET, -1)

    def test_digit_range(self):
        with pytest.raises(ValueError):
            hotp(SECRET, 0, digits=5)
        with pytest.raises(ValueError):
            hotp(SECRET, 0, digits=11)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            hotp(SECRET, 0, algorithm="md5")

    def test_eight_digits(self):
        code = hotp(SECRET, 0, digits=8)
        assert len(code) == 8 and code.isdigit()

    def test_sha256_differs_from_sha1(self):
        assert hotp(SECRET, 5) != hotp(SECRET, 5, algorithm="sha256")

    @given(st.integers(min_value=0, max_value=10**9))
    def test_always_zero_padded_six_digits(self, counter):
        code = hotp(SECRET, counter)
        assert len(code) == 6 and code.isdigit()


class TestVerify:
    def test_exact_counter(self):
        assert verify_hotp(SECRET, RFC_CODES[3], counter=3) == 3

    def test_look_ahead_window(self):
        # Device is ahead of the server by 4 presses.
        assert verify_hotp(SECRET, RFC_CODES[7], counter=3, look_ahead=5) == 7

    def test_outside_window(self):
        assert verify_hotp(SECRET, RFC_CODES[9], counter=3, look_ahead=2) is None

    def test_wrong_code(self):
        assert verify_hotp(SECRET, "000000", counter=0, look_ahead=10) is None

    def test_behind_counter_not_accepted(self):
        # Codes before the stored counter never verify (replay).
        assert verify_hotp(SECRET, RFC_CODES[1], counter=3, look_ahead=10) is None

"""Signed URL behaviour: binding, expiry, tamper resistance."""

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.signing import URLSigner

KEY = b"portal-unpair-signing-key!!"


@pytest.fixture
def clock():
    return SimulatedClock(1_000_000.0)


@pytest.fixture
def signer(clock):
    return URLSigner(KEY, clock)


class TestSigning:
    def test_round_trip(self, signer):
        url = signer.sign("/mfa/unpair", "alice")
        assert signer.verify(url) == "alice"

    def test_url_contains_user_expiry_sig(self, signer):
        url = signer.sign("/mfa/unpair", "alice")
        assert "user=alice" in url and "expires=" in url and "sig=" in url

    def test_expired_link_rejected(self, signer, clock):
        url = signer.sign("/mfa/unpair", "alice", ttl=3600)
        clock.advance(3601)
        assert signer.verify(url) is None

    def test_link_valid_until_expiry(self, signer, clock):
        url = signer.sign("/mfa/unpair", "alice", ttl=3600)
        clock.advance(3599)
        assert signer.verify(url) == "alice"

    def test_user_substitution_rejected(self, signer):
        url = signer.sign("/mfa/unpair", "alice")
        assert signer.verify(url.replace("user=alice", "user=mallory")) is None

    def test_path_substitution_rejected(self, signer):
        url = signer.sign("/mfa/unpair", "alice")
        assert signer.verify(url.replace("/mfa/unpair", "/admin/delete")) is None

    def test_signature_tamper_rejected(self, signer):
        url = signer.sign("/mfa/unpair", "alice")
        tampered = url[:-4] + ("0000" if url[-4:] != "0000" else "1111")
        assert signer.verify(tampered) is None

    def test_expiry_extension_rejected(self, signer, clock):
        url = signer.sign("/mfa/unpair", "alice", ttl=10)
        import re

        extended = re.sub(r"expires=\d+", f"expires={int(clock.now()) + 99999}", url)
        clock.advance(60)
        assert signer.verify(extended) is None

    def test_garbage_url_rejected(self, signer):
        assert signer.verify("/mfa/unpair?nonsense=1") is None
        assert signer.verify("") is None

    def test_wrong_key_rejected(self, clock):
        url = URLSigner(KEY, clock).sign("/mfa/unpair", "alice")
        other = URLSigner(b"a-completely-different-key!", clock)
        assert other.verify(url) is None

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            URLSigner(b"short")

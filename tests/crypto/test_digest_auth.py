"""HTTP Digest authentication: handshake, replay protection, failures."""

import random

import pytest

from repro.crypto.digest_auth import (
    DigestClient,
    DigestVerifier,
    digest_response,
    ha1,
    ha2,
)


@pytest.fixture
def verifier():
    v = DigestVerifier("LinOTP admin area", rng=random.Random(1))
    v.add_user("portal", "hunter2")
    return v


@pytest.fixture
def client():
    return DigestClient("portal", "hunter2", rng=random.Random(2))


class TestPrimitives:
    def test_ha1_known_value(self):
        # RFC 2617's worked example (user Mufasa).
        assert ha1("Mufasa", "testrealm@host.com", "Circle Of Life") == (
            "939e7578ed9e3c518a452acee763bce9"
        )

    def test_ha2_method_uri(self):
        assert ha2("GET", "/dir/index.html") == "39aff3a2bab6126f332b942af96d3366"

    def test_rfc2617_worked_example(self):
        response = digest_response(
            ha1("Mufasa", "testrealm@host.com", "Circle Of Life"),
            "dcd98b7102dd2f0e8b11d0f600bfb0c093",
            "00000001",
            "0a4f113b",
            "auth",
            ha2("GET", "/dir/index.html"),
        )
        assert response == "6629fae49393a05397450978507c4ef1"


class TestHandshake:
    def test_valid_credentials_verify(self, verifier, client):
        challenge = verifier.challenge()
        creds = client.respond(challenge, "POST", "/admin/init")
        assert verifier.verify(creds, "POST", "/admin/init")

    def test_wrong_password_rejected(self, verifier):
        bad = DigestClient("portal", "wrong", rng=random.Random(3))
        challenge = verifier.challenge()
        creds = bad.respond(challenge, "GET", "/admin/show")
        assert not verifier.verify(creds, "GET", "/admin/show")

    def test_unknown_user_rejected(self, verifier):
        stranger = DigestClient("nobody", "hunter2", rng=random.Random(4))
        creds = stranger.respond(verifier.challenge(), "GET", "/x")
        assert not verifier.verify(creds, "GET", "/x")

    def test_uri_mismatch_rejected(self, verifier, client):
        creds = client.respond(verifier.challenge(), "POST", "/admin/init")
        assert not verifier.verify(creds, "POST", "/admin/remove")

    def test_method_mismatch_rejected(self, verifier, client):
        creds = client.respond(verifier.challenge(), "POST", "/admin/init")
        assert not verifier.verify(creds, "GET", "/admin/init")

    def test_fabricated_nonce_rejected(self, verifier, client):
        challenge = verifier.challenge()
        challenge.nonce = "f" * 32  # not issued by the verifier
        creds = client.respond(challenge, "GET", "/x")
        assert not verifier.verify(creds, "GET", "/x")


class TestReplayProtection:
    def test_replayed_credentials_rejected(self, verifier, client):
        challenge = verifier.challenge()
        creds = client.respond(challenge, "POST", "/admin/init")
        assert verifier.verify(creds, "POST", "/admin/init")
        # Same Authorization header sent again: rejected.
        assert not verifier.verify(creds, "POST", "/admin/init")

    def test_incrementing_nc_allows_reuse_of_nonce(self, verifier, client):
        challenge = verifier.challenge()
        first = client.respond(challenge, "POST", "/admin/init")
        second = client.respond(challenge, "POST", "/admin/init")
        assert first.nc != second.nc
        assert verifier.verify(first, "POST", "/admin/init")
        assert verifier.verify(second, "POST", "/admin/init")

    def test_password_never_in_credentials(self, verifier, client):
        creds = client.respond(verifier.challenge(), "POST", "/admin/init")
        for value in vars(creds).values():
            assert "hunter2" not in str(value)

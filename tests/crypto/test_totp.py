"""TOTP: RFC 6238 vectors, drift window, replay nullification, resync."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimulatedClock
from repro.crypto.totp import (
    DEFAULT_DRIFT,
    TOTPGenerator,
    TOTPValidator,
    time_step,
    totp_at,
)

SECRET = b"12345678901234567890"

# RFC 6238 appendix B (SHA-1 rows, 8 digits).
RFC_VECTORS = [
    (59, "94287082"),
    (1111111109, "07081804"),
    (1111111111, "14050471"),
    (1234567890, "89005924"),
    (2000000000, "69279037"),
    (20000000000, "65353130"),
]


class TestRFCVectors:
    @pytest.mark.parametrize("timestamp,code", RFC_VECTORS)
    def test_vector(self, timestamp, code):
        assert totp_at(SECRET, timestamp, digits=8) == code


class TestTimeStep:
    def test_boundaries(self):
        assert time_step(0) == 0
        assert time_step(29.999) == 0
        assert time_step(30) == 1

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            time_step(100, step=0)


class TestGenerator:
    def test_current_code_is_six_digits(self):
        gen = TOTPGenerator(secret=SECRET, clock=SimulatedClock(1_000_000))
        code = gen.current_code()
        assert len(code) == 6 and code.isdigit()

    def test_code_stable_within_step(self):
        clock = SimulatedClock(1_000_010)  # 20s into the step at 999_990
        gen = TOTPGenerator(secret=SECRET, clock=clock)
        first = gen.current_code()
        clock.advance(9)
        assert gen.current_code() == first
        clock.advance(2)
        assert gen.current_code() != first

    def test_skew_shifts_code(self):
        clock = SimulatedClock(1_000_000)
        on_time = TOTPGenerator(secret=SECRET, clock=clock)
        drifted = TOTPGenerator(secret=SECRET, clock=clock, skew=90.0)
        assert drifted.current_code() == on_time.code_at(1_000_090)

    def test_seconds_remaining(self):
        clock = SimulatedClock(1_000_010)  # 20s into the step at 999_990
        gen = TOTPGenerator(secret=SECRET, clock=clock)
        assert gen.seconds_remaining() == pytest.approx(10.0)


class TestValidator:
    def make(self, start=1_000_000.0, drift=DEFAULT_DRIFT):
        clock = SimulatedClock(start)
        return clock, TOTPValidator(clock=clock, drift=drift)

    def test_exact_code_validates(self):
        clock, validator = self.make()
        outcome = validator.validate("t1", SECRET, totp_at(SECRET, clock.now()))
        assert outcome.ok and outcome.offset == 0

    def test_replay_rejected(self):
        clock, validator = self.make()
        code = totp_at(SECRET, clock.now())
        assert validator.validate("t1", SECRET, code).ok
        second = validator.validate("t1", SECRET, code)
        assert not second.ok
        assert "already used" in second.reason

    def test_replay_state_is_per_key(self):
        clock, validator = self.make()
        code = totp_at(SECRET, clock.now())
        assert validator.validate("t1", SECRET, code).ok
        assert validator.validate("t2", SECRET, code).ok

    def test_drift_within_window_accepted(self):
        clock, validator = self.make()
        # The paper's tolerance: 300 seconds of device drift.
        ahead = totp_at(SECRET, clock.now() + 299)
        outcome = validator.validate("t1", SECRET, ahead)
        assert outcome.ok and outcome.offset > 0

    def test_drift_behind_window_accepted(self):
        clock, validator = self.make()
        behind = totp_at(SECRET, clock.now() - 299)
        outcome = validator.validate("t1", SECRET, behind)
        assert outcome.ok and outcome.offset < 0

    def test_drift_beyond_window_rejected(self):
        clock, validator = self.make()
        far = totp_at(SECRET, clock.now() + 400)
        assert not validator.validate("t1", SECRET, far).ok

    def test_tight_drift_window(self):
        clock, validator = self.make(drift=30)
        ok = totp_at(SECRET, clock.now() + 30)
        bad = totp_at(SECRET, clock.now() + 90)
        assert validator.validate("t1", SECRET, ok).ok
        assert not validator.validate("t2", SECRET, bad).ok

    def test_malformed_code_rejected(self):
        _, validator = self.make()
        for bad in ("", "12345", "1234567", "12345a", "      "):
            assert not validator.validate("t1", SECRET, bad).ok

    def test_earlier_step_rejected_after_later_accepted(self):
        clock, validator = self.make()
        later = totp_at(SECRET, clock.now() + 60)
        earlier = totp_at(SECRET, clock.now() - 60)
        assert validator.validate("t1", SECRET, later).ok
        assert not validator.validate("t1", SECRET, earlier).ok

    def test_negative_drift_config_rejected(self):
        with pytest.raises(ValueError):
            TOTPValidator(drift=-1)

    def test_forget_clears_replay_floor(self):
        clock, validator = self.make()
        code = totp_at(SECRET, clock.now())
        assert validator.validate("t1", SECRET, code).ok
        validator.forget("t1")
        assert validator.validate("t1", SECRET, code).ok

    @given(offset=st.integers(min_value=-10, max_value=10))
    @settings(max_examples=30)
    def test_any_step_in_window_validates(self, offset):
        clock = SimulatedClock(1_000_000.0)
        validator = TOTPValidator(clock=clock)
        code = totp_at(SECRET, clock.now() + offset * 30)
        assert validator.validate(f"k{offset}", SECRET, code).ok


class TestResync:
    def test_resync_far_drifted_token(self):
        clock = SimulatedClock(1_000_000.0)
        validator = TOTPValidator(clock=clock)
        # Device is 2 hours fast: far outside the validation window.
        future = clock.now() + 7200
        code1 = totp_at(SECRET, future)
        code2 = totp_at(SECRET, future + 30)
        assert not validator.validate("t1", SECRET, code1).ok
        outcome = validator.resync("t1", SECRET, code1, code2, search=500)
        assert outcome.ok and outcome.offset == 240

    def test_resync_requires_consecutive_codes(self):
        clock = SimulatedClock(1_000_000.0)
        validator = TOTPValidator(clock=clock)
        code1 = totp_at(SECRET, clock.now() + 7200)
        code_wrong = totp_at(SECRET, clock.now() + 7290)  # not consecutive
        assert not validator.resync("t1", SECRET, code1, code_wrong, search=500).ok

    def test_resync_anchors_replay_floor(self):
        clock = SimulatedClock(1_000_000.0)
        validator = TOTPValidator(clock=clock)
        future = clock.now() + 3000
        code1 = totp_at(SECRET, future)
        code2 = totp_at(SECRET, future + 30)
        assert validator.resync("t1", SECRET, code1, code2, search=200).ok
        # The two resync codes can no longer be used to authenticate.
        assert not validator.validate("t1", SECRET, code2).ok

"""Secret generation and at-rest sealing."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.secrets import SecretSealer, generate_secret, secret_to_base32

KEY = b"0123456789abcdef0123456789abcdef"


class TestGenerateSecret:
    def test_default_length(self):
        assert len(generate_secret(rng=random.Random(1))) == 20

    def test_minimum_length_enforced(self):
        with pytest.raises(ValueError):
            generate_secret(nbytes=15)

    def test_deterministic_with_seed(self):
        a = generate_secret(rng=random.Random(42))
        b = generate_secret(rng=random.Random(42))
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_secret(rng=random.Random(1)) != generate_secret(
            rng=random.Random(2)
        )

    def test_base32_rendering_unpadded(self):
        text = secret_to_base32(generate_secret(rng=random.Random(3)))
        assert "=" not in text
        assert text.isalnum()


class TestSealer:
    def test_round_trip(self):
        sealer = SecretSealer(KEY, rng=random.Random(1))
        secret = b"12345678901234567890"
        assert sealer.unseal(sealer.seal(secret)) == secret

    def test_sealed_blob_hides_plaintext(self):
        sealer = SecretSealer(KEY, rng=random.Random(1))
        secret = b"A" * 20
        assert secret not in sealer.seal(secret)

    def test_nonce_makes_seals_differ(self):
        sealer = SecretSealer(KEY, rng=random.Random(1))
        secret = b"12345678901234567890"
        assert sealer.seal(secret) != sealer.seal(secret)

    def test_tamper_detected(self):
        sealer = SecretSealer(KEY, rng=random.Random(1))
        blob = bytearray(sealer.seal(b"12345678901234567890"))
        blob[14] ^= 0x01  # flip a ciphertext bit
        with pytest.raises(ValueError, match="integrity"):
            sealer.unseal(bytes(blob))

    def test_tag_tamper_detected(self):
        sealer = SecretSealer(KEY, rng=random.Random(1))
        blob = bytearray(sealer.seal(b"12345678901234567890"))
        blob[-1] ^= 0x80
        with pytest.raises(ValueError):
            sealer.unseal(bytes(blob))

    def test_truncated_blob_rejected(self):
        sealer = SecretSealer(KEY, rng=random.Random(1))
        with pytest.raises(ValueError, match="too short"):
            sealer.unseal(b"short")

    def test_wrong_key_rejected(self):
        blob = SecretSealer(KEY, rng=random.Random(1)).seal(b"x" * 20)
        other = SecretSealer(b"another-master-key-0123456789ab", rng=random.Random(2))
        with pytest.raises(ValueError):
            other.unseal(blob)

    def test_short_master_key_rejected(self):
        with pytest.raises(ValueError):
            SecretSealer(b"short")

    @given(st.binary(min_size=0, max_size=100))
    def test_round_trip_any_payload(self, payload):
        sealer = SecretSealer(KEY, rng=random.Random(9))
        assert sealer.unseal(sealer.seal(payload)) == payload

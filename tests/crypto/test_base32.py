"""Base32 codec: RFC 4648 vectors, stdlib equivalence, strictness."""

import base64

import pytest
from hypothesis import given, strategies as st

from repro.crypto.base32 import b32decode, b32encode

# RFC 4648 section 10 test vectors.
RFC_VECTORS = [
    (b"", ""),
    (b"f", "MY======"),
    (b"fo", "MZXQ===="),
    (b"foo", "MZXW6==="),
    (b"foob", "MZXW6YQ="),
    (b"fooba", "MZXW6YTB"),
    (b"foobar", "MZXW6YTBOI======"),
]


class TestRFCVectors:
    @pytest.mark.parametrize("raw,encoded", RFC_VECTORS)
    def test_encode(self, raw, encoded):
        assert b32encode(raw) == encoded

    @pytest.mark.parametrize("raw,encoded", RFC_VECTORS)
    def test_decode(self, raw, encoded):
        assert b32decode(encoded) == raw

    @pytest.mark.parametrize("raw,encoded", RFC_VECTORS)
    def test_unpadded_decode(self, raw, encoded):
        assert b32decode(encoded.rstrip("=")) == raw


class TestProperties:
    @given(st.binary(max_size=200))
    def test_matches_stdlib(self, data):
        assert b32encode(data) == base64.b32encode(data).decode()

    @given(st.binary(max_size=200))
    def test_round_trip(self, data):
        assert b32decode(b32encode(data)) == data

    @given(st.binary(min_size=1, max_size=60))
    def test_unpadded_round_trip(self, data):
        assert b32decode(b32encode(data, pad=False)) == data

    @given(st.binary(max_size=60))
    def test_casefold(self, data):
        assert b32decode(b32encode(data).lower()) == data


class TestStrictness:
    def test_invalid_character(self):
        with pytest.raises(ValueError, match="invalid base32 character"):
            b32decode("MZXW1===")  # '1' is not in the alphabet

    def test_invalid_length(self):
        # length 1 (mod 8) can never result from encoding
        with pytest.raises(ValueError, match="invalid base32 length"):
            b32decode("A")

    def test_nonzero_padding_bits(self):
        # "MZ" decodes to one byte with 2 trailing bits that must be zero;
        # "M7" has them non-zero.
        with pytest.raises(ValueError, match="padding bits"):
            b32decode("M7")

    def test_length_three_rejected(self):
        with pytest.raises(ValueError):
            b32decode("ABC")

    def test_length_six_rejected(self):
        with pytest.raises(ValueError):
            b32decode("ABCDEF")

"""The FaultPlan DSL and the engine's application of each fault kind."""

import json
import random

import pytest

from repro.chaos import (
    ChaosEngine,
    ClockSkew,
    FaultPlan,
    LatencyFault,
    LossBurst,
    Partition,
    ServerFlap,
    ShardCrash,
    SlowShard,
    SMSBrownout,
    shipped_plans,
)
from repro.common.clock import SimulatedClock
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.sms_gateway import SMSGateway
from repro.radius.transport import UDPFabric
from repro.storage.memory import InMemoryEngine
from repro.storage.sharding import ShardedEngine


class TestFaultValidation:
    def test_schedule_bounds(self):
        with pytest.raises(ValueError):
            LossBurst(start=-1, duration=10)
        with pytest.raises(ValueError):
            LossBurst(start=0, duration=0)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            LossBurst(start=0, duration=10, loss_rate=0.0)
        with pytest.raises(ValueError):
            LossBurst(start=0, duration=10, loss_rate=1.5)

    def test_partition_needs_targets(self):
        with pytest.raises(ValueError):
            Partition(start=0, duration=10)

    def test_flap_needs_sane_duty_cycle(self):
        with pytest.raises(ValueError):
            ServerFlap(start=0, duration=10, target="a", period=10, downtime=20)
        with pytest.raises(ValueError):
            ServerFlap(start=0, duration=10, period=10, downtime=5)  # no target

    def test_zero_skew_rejected(self):
        with pytest.raises(ValueError):
            ClockSkew(start=0, duration=10, skew=0.0)

    def test_window_half_open(self):
        fault = LatencyFault(start=10, duration=5, delay=0.1)
        assert not fault.active_at(9.999)
        assert fault.active_at(10)
        assert fault.active_at(14.999)
        assert not fault.active_at(15)  # [start, end)

    def test_flap_duty_cycle(self):
        flap = ServerFlap(start=0, duration=100, target="a", period=20, downtime=5)
        assert flap.down_at(0)
        assert flap.down_at(4.9)
        assert not flap.down_at(5)
        assert flap.down_at(20)
        assert not flap.down_at(101)  # window closed


class TestPlan:
    def test_active_and_horizon(self):
        plan = FaultPlan(
            "p",
            "test",
            (
                LossBurst(start=0, duration=10),
                Partition(start=20, duration=10, targets=("a",)),
            ),
        )
        assert [f.kind for f in plan.active(5)] == ["loss_burst"]
        assert plan.active(15) == []
        assert plan.horizon == 30

    def test_shipped_plans_keep_one_server_healthy(self):
        # Every shipped plan must leave at least one default-farm server
        # free of deterministic blocking at every instant, or the
        # availability invariant would be vacuous.
        farm = [f"10.0.0.{10 + i}:1812" for i in range(3)]
        for plan in shipped_plans().values():
            clock = SimulatedClock(0.0)
            engine = ChaosEngine(plan, clock, seed=1)
            t = 0.0
            while t <= plan.horizon:
                clock.set(t)
                assert any(not engine.impaired(s) for s in farm), (
                    f"{plan.name} blocks the whole farm at t={t}"
                )
                t += 7.5

    def test_plan_floor_validated(self):
        with pytest.raises(ValueError):
            FaultPlan("p", "test", availability_floor=1.5)


class TestEngineDatagrams:
    def test_partition_vetoes_matching_traffic(self):
        clock = SimulatedClock(0.0)
        plan = FaultPlan(
            "p", "", (Partition(start=0, duration=100, targets=("10.0.0.10",)),)
        )
        engine = ChaosEngine(plan, clock, seed=3)
        assert engine.on_datagram("10.0.0.10:1812", "10.3.1.5") == "partition"
        assert engine.on_datagram("10.0.0.11:1812", "10.3.1.5") is None
        # Source-side match partitions a client subnet too.
        plan2 = FaultPlan(
            "p2", "", (Partition(start=0, duration=100, targets=("10.3.",)),)
        )
        engine2 = ChaosEngine(plan2, SimulatedClock(0.0), seed=3)
        assert engine2.on_datagram("10.0.0.10:1812", "10.3.1.5") == "partition"

    def test_flap_drops_only_in_downtime(self):
        clock = SimulatedClock(0.0)
        plan = FaultPlan(
            "p",
            "",
            (
                ServerFlap(
                    start=0, duration=100, target="a", period=20, downtime=10
                ),
            ),
        )
        engine = ChaosEngine(plan, clock, seed=4)
        assert engine.on_datagram("a", "") == "flap"
        clock.set(15)  # up phase
        assert engine.on_datagram("a", "") is None
        clock.set(150)  # window over
        assert engine.on_datagram("a", "") is None

    def test_loss_burst_is_seeded_and_independent(self):
        plan = FaultPlan("p", "", (LossBurst(start=0, duration=100, loss_rate=0.5),))

        def outcomes(seed):
            engine = ChaosEngine(plan, SimulatedClock(0.0), seed=seed)
            return [engine.on_datagram("a", "") for _ in range(50)]

        assert outcomes(9) == outcomes(9)  # same seed, same drops
        assert outcomes(9) != outcomes(10)
        dropped = sum(1 for o in outcomes(9) if o == "loss_burst")
        assert 10 <= dropped <= 40  # ~50% of 50

    def test_latency_charges_the_clock(self):
        clock = SimulatedClock(0.0)
        plan = FaultPlan(
            "p", "", (LatencyFault(start=0, duration=100, delay=0.4, target="a"),)
        )
        engine = ChaosEngine(plan, clock, seed=5)
        assert engine.on_datagram("a", "") is None  # delivered, but late
        assert clock.now() == pytest.approx(0.4)
        assert engine.on_datagram("b", "") is None  # non-matching: free
        assert clock.now() == pytest.approx(0.4)

    def test_fabric_integration_counts_chaos_drops(self):
        from repro.telemetry import Registry

        telemetry = Registry()
        fabric = UDPFabric(rng=random.Random(1), telemetry=telemetry)
        fabric.register("a", lambda d, s: b"ok")
        clock = SimulatedClock(0.0)
        plan = FaultPlan("p", "", (Partition(start=0, duration=10, targets=("a",)),))
        ChaosEngine(plan, clock, seed=6, fabric=fabric)
        assert fabric.send_request("a", b"x") is None
        clock.set(20)
        assert fabric.send_request("a", b"x") == b"ok"
        drops = telemetry.counter("udp_fabric_chaos_drops_total")
        assert drops.value(reason="partition") == 1


class TestStatefulFaults:
    def test_slow_shard_applied_and_reverted(self):
        sharded = ShardedEngine([InMemoryEngine(), InMemoryEngine()])
        clock = SimulatedClock(0.0)
        plan = FaultPlan(
            "p", "", (SlowShard(start=10, duration=10, shard=1, latency=0.5),)
        )
        engine = ChaosEngine(plan, clock, seed=7, storage=sharded)
        engine.tick()
        assert sharded.shards[1].latency == 0.0
        clock.set(10)
        engine.tick()
        assert sharded.shards[1].latency == 0.5
        assert sharded.shards[0].latency == 0.0
        clock.set(25)
        engine.tick()
        assert sharded.shards[1].latency == 0.0

    def test_slow_shard_on_unsharded_stack(self):
        engine_mem = InMemoryEngine()
        clock = SimulatedClock(0.0)
        plan = FaultPlan(
            "p", "", (SlowShard(start=0, duration=10, shard=0, latency=0.3),)
        )
        chaos = ChaosEngine(plan, clock, seed=8, storage=engine_mem)
        chaos.tick()
        assert engine_mem.latency == 0.3
        # A shard index that does not exist must fail loudly.
        plan2 = FaultPlan(
            "p2", "", (SlowShard(start=0, duration=10, shard=3, latency=0.3),)
        )
        chaos2 = ChaosEngine(plan2, SimulatedClock(0.0), seed=8, storage=InMemoryEngine())
        with pytest.raises(TypeError):
            chaos2.tick()

    def test_shard_crash_promotes_then_rejoins(self):
        from repro.storage import ReplicatedEngine, TableSchema

        replicated = ReplicatedEngine(shards=2, replicas=2)
        replicated.create_table(
            "t", TableSchema(("id", "v"), "id")
        )
        for i in range(10):
            replicated.insert("t", {"id": i, "v": i})
        clock = SimulatedClock(0.0)
        plan = FaultPlan(
            "p", "", (ShardCrash(start=10, duration=10, shard=0),)
        )
        engine = ChaosEngine(plan, clock, seed=7, storage=replicated)
        clock.set(10)
        engine.tick()
        group = replicated.groups[0]
        assert group.promotions == 1
        crash_events = [e for e in engine.events if e["kind"] == "shard_crash"]
        assert crash_events and crash_events[0]["digest_match"] is True
        clock.set(25)
        engine.tick()
        rejoin_events = [e for e in engine.events if e["kind"] == "shard_rejoin"]
        assert rejoin_events and rejoin_events[0]["digest_match"] is True
        assert replicated.replication_stats()["all_caught_up"] is True

    def test_shard_crash_needs_replicated_storage(self):
        clock = SimulatedClock(0.0)
        plan = FaultPlan("p", "", (ShardCrash(start=0, duration=10, shard=0),))
        chaos = ChaosEngine(plan, clock, seed=8, storage=InMemoryEngine())
        with pytest.raises(TypeError):
            chaos.tick()
        plan2 = FaultPlan("p2", "", (ShardCrash(start=0, duration=10),))
        with pytest.raises(TypeError):
            ChaosEngine(plan2, SimulatedClock(0.0), seed=8).tick()

    def test_shard_crash_validation(self):
        with pytest.raises(ValueError):
            ShardCrash(start=0, duration=10, shard=-1)
        assert ShardCrash(start=0, duration=10).kind == "shard_crash"

    def test_clock_skew_applied_per_user(self):
        clock = SimulatedClock(0.0)
        devices = {
            "u1": TOTPGenerator(secret=b"s1", clock=clock),
            "u2": TOTPGenerator(secret=b"s2", clock=clock),
        }
        plan = FaultPlan(
            "p", "", (ClockSkew(start=0, duration=10, skew=75.0, user="u2"),)
        )
        engine = ChaosEngine(plan, clock, seed=9, devices=devices)
        engine.tick()
        assert devices["u1"].skew == 0.0
        assert devices["u2"].skew == 75.0
        clock.set(20)
        engine.tick()
        assert devices["u2"].skew == 0.0

    def test_sms_brownout_stalls_the_carrier(self):
        clock = SimulatedClock(0.0)
        gateway = SMSGateway(clock, rng=random.Random(11))
        plan = FaultPlan(
            "p",
            "",
            (
                SMSBrownout(
                    start=0,
                    duration=100,
                    stall_probability=1.0,
                    stall_delay=600.0,
                ),
            ),
        )
        engine = ChaosEngine(plan, clock, seed=12, sms_gateway=gateway)
        stalled = gateway.send("+15125550100", "code 111111")
        assert stalled.deliver_at - stalled.sent_at >= 600.0
        assert stalled.attempts == 2  # the carrier retried
        clock.set(200)  # window over: normal delivery again
        prompt = gateway.send("+15125550100", "code 222222")
        assert prompt.deliver_at - prompt.sent_at < 10.0
        assert any(e["kind"] == "sms_brownout" for e in engine.events)

    def test_detach_restores_everything(self):
        clock = SimulatedClock(0.0)
        fabric = UDPFabric(rng=random.Random(13))
        gateway = SMSGateway(clock, rng=random.Random(14))
        mem = InMemoryEngine()
        plan = FaultPlan(
            "p",
            "",
            (
                Partition(start=0, duration=100, targets=("a",)),
                SlowShard(start=0, duration=100, shard=0, latency=0.2),
            ),
        )
        engine = ChaosEngine(
            plan, clock, seed=15, fabric=fabric, sms_gateway=gateway, storage=mem
        )
        engine.tick()
        assert mem.latency == 0.2
        engine.detach()
        assert fabric.chaos is None
        assert gateway.carrier_override is None
        assert mem.latency == 0.0


class TestEventLog:
    def test_lines_are_canonical_json(self):
        clock = SimulatedClock(0.0)
        plan = FaultPlan("p", "", (Partition(start=0, duration=10, targets=("a",)),))
        engine = ChaosEngine(plan, clock, seed=16)
        engine.on_datagram("a", "src")
        engine.record("attempt", index=0, ok=True)
        lines = engine.event_log_lines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert json.dumps(parsed, sort_keys=True, separators=(",", ":")) == line
        assert json.loads(lines[0])["kind"] == "partition_drop"

"""Property-style seeded tests for the retransmit backoff schedule.

Not hypothesis-based (no new dependencies at runtime): a sweep of many
fixed seeds exercises the same properties — monotone growth, cap
respected, determinism — with exact reproducibility on failure.
"""

import pytest

from repro.radius.backoff import BackoffPolicy, BackoffSchedule, stable_seed

SEEDS = list(range(60))


class TestScheduleProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_monotone_nondecreasing(self, seed):
        schedule = BackoffSchedule(BackoffPolicy(), seed)
        delays = schedule.delays(12)
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cap_respected(self, seed):
        policy = BackoffPolicy(cap=5.0)
        delays = BackoffSchedule(policy, seed).delays(20)
        assert all(d <= policy.cap for d in delays)
        # Growth is exponential, so the tail must have hit the cap exactly.
        assert delays[-1] == policy.cap

    @pytest.mark.parametrize("seed", SEEDS)
    def test_first_delay_at_least_base(self, seed):
        policy = BackoffPolicy()
        schedule = BackoffSchedule(policy, seed)
        assert schedule.delay(1) >= policy.base
        assert schedule.delay(0) == 0.0  # the first attempt waits nothing

    def test_identical_seeds_identical_schedules(self):
        policy = BackoffPolicy()
        for seed in SEEDS:
            a = BackoffSchedule(policy, seed).delays(10)
            b = BackoffSchedule(policy, seed).delays(10)
            assert a == b

    def test_distinct_seeds_desynchronize(self):
        policy = BackoffPolicy()
        schedules = {tuple(BackoffSchedule(policy, s).delays(6)) for s in SEEDS}
        # Jitter must spread the fleet: near-total distinctness expected.
        assert len(schedules) > len(SEEDS) * 0.9

    def test_zero_jitter_is_pure_exponential(self):
        policy = BackoffPolicy(base=0.5, multiplier=2.0, cap=64.0, jitter=0.0)
        delays = BackoffSchedule(policy, 7).delays(5)
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0]


class TestPolicyValidation:
    def test_jitter_bounded_by_multiplier(self):
        # jitter > multiplier - 1 could break monotonicity; rejected.
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=2.0, jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=-0.1)

    def test_bad_curve_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.9)
        with pytest.raises(ValueError):
            BackoffPolicy(cap=0.0)


class TestStableSeed:
    def test_independent_of_hash_randomization(self):
        # CRC-based, so the same inputs map to the same seed in every
        # interpreter run (unlike hash()).
        assert stable_seed("10.3.1.5", "10.0.0.10:1812") == stable_seed(
            "10.3.1.5", "10.0.0.10:1812"
        )

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {stable_seed("client", f"10.0.0.{i}:1812") for i in range(32)}
        assert len(seeds) == 32

"""The headline deliverable: whole-workload invariants under every plan.

Each test drives (via the cached :func:`report_for`) a 120-login workload
through the full stack — sshd, PAM, the health-aware RADIUS client, the
LinOTP back end, sharded storage — while one shipped fault plan fires,
and asserts the properties that must survive *any* of the shipped chaos:

a. a wrong token code is never accepted;
b. availability stays at or above the plan's floor while at least one
   RADIUS server is free of deterministic blocking;
c. every denial showed the user a reason beyond the login banner;
d. identical seeds yield byte-identical event logs.
"""

import pytest

from repro.chaos import WorkloadConfig, run_chaos, shipped_plans

from .conftest import report_for

PLAN_NAMES = sorted(shipped_plans())


@pytest.mark.parametrize("plan_name", PLAN_NAMES)
class TestInvariants:
    def test_no_false_accepts(self, plan_name, seed):
        report = report_for(plan_name, seed)
        assert report.false_accepts() == []

    def test_availability_floor(self, plan_name, seed):
        report = report_for(plan_name, seed)
        floor = report.plan.availability_floor
        eligible = [a for a in report.attempts if a.expect_success and a.healthy]
        assert eligible, "workload produced no eligible honest logins"
        assert report.availability() >= floor

    def test_every_denial_has_a_reason(self, plan_name, seed):
        report = report_for(plan_name, seed)
        assert report.reasonless_denials() == []

    def test_no_violations_reported(self, plan_name, seed):
        # The report's own judgement agrees with the individual assertions.
        assert report_for(plan_name, seed).invariant_violations() == []


class TestDeterminism:
    @pytest.mark.parametrize("plan_name", ["partition", "kitchen-sink"])
    def test_same_seed_same_event_log(self, plan_name, seed):
        cached = report_for(plan_name, seed)
        fresh = run_chaos(shipped_plans()[plan_name], WorkloadConfig(seed=seed))
        assert fresh.event_lines == cached.event_lines
        assert fresh.digest() == cached.digest()
        assert [a.success for a in fresh.attempts] == [
            a.success for a in cached.attempts
        ]

    def test_different_seeds_differ(self):
        a = report_for("loss-burst", 101)
        b = run_chaos(shipped_plans()["loss-burst"], WorkloadConfig(seed=102))
        assert a.digest() != b.digest()


class TestWorkloadShape:
    def test_wrong_code_probes_present(self, seed):
        report = report_for("baseline", seed)
        probes = [a for a in report.attempts if not a.expect_success]
        assert len(probes) == 120 // 9
        assert all(not a.success for a in probes)
        # Probes are rejected with the wire's uniform error, not silently.
        assert all(a.reasons for a in probes)

    def test_baseline_all_honest_logins_succeed(self, seed):
        report = report_for("baseline", seed)
        honest = [a for a in report.attempts if a.expect_success]
        assert all(a.success for a in honest)

    def test_partition_marks_servers_unhealthy_not_the_farm(self, seed):
        # Two of three servers blocked still leaves the farm "healthy" for
        # the availability invariant — and logins keep succeeding.
        report = report_for("partition", seed)
        assert all(a.healthy for a in report.attempts)
        drops = [line for line in report.event_lines if "partition_drop" in line]
        assert drops, "the partition never actually vetoed a datagram"

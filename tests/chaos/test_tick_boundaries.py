"""Regression: fault windows activate exactly at their plan boundaries.

The polling-era engine ticked only between workload steps, so a window
opening mid-step was applied up to one ``step_seconds`` late, and a
window shorter than the step could be skipped entirely.  With boundary
ticks scheduled on the event core (``ChaosEngine.schedule_ticks``), the
``window_open``/``window_close`` events land at the exact plan-relative
instants — these tests pin that behaviour.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import ClockSkew, SlowShard
from repro.chaos.plan import FaultPlan
from repro.common.clock import VirtualClock
from repro.simcore import EventScheduler
from repro.storage import InMemoryEngine


def make_rig(faults):
    clock = VirtualClock(10_000.0)
    storage = InMemoryEngine(clock=clock)
    plan = FaultPlan("boundary-test", "tick boundary regression", tuple(faults))
    engine = ChaosEngine(plan, clock, seed=1, storage=storage)
    scheduler = EventScheduler(clock=clock, seed=1)
    engine.schedule_ticks(scheduler)
    return engine, scheduler, storage


def transitions(engine):
    return [
        (event["t"], event["kind"], event["fault"])
        for event in engine.events
        if event["kind"] in ("window_open", "window_close")
    ]


class TestBoundaryExactness:
    def test_window_opens_and_closes_at_exact_instants(self):
        engine, scheduler, storage = make_rig(
            [SlowShard(start=30.0, duration=45.0, shard=0, latency=0.5)]
        )
        scheduler.run_until(10_000.0 + 200.0)
        assert transitions(engine) == [
            (30.0, "window_open", "slow_shard"),
            (75.0, "window_close", "slow_shard"),
        ]

    def test_state_is_applied_at_open_and_reverted_at_close(self):
        engine, scheduler, storage = make_rig(
            [SlowShard(start=30.0, duration=45.0, shard=0, latency=0.5)]
        )
        probe = []
        # Sample the latency knob around the boundaries; ticks schedule
        # first, so a same-instant probe sees the just-applied state.
        for offset in (29.0, 30.0, 74.0, 75.0):
            scheduler.schedule_at(
                10_000.0 + offset, lambda: probe.append(storage.latency)
            )
        scheduler.run_until(10_000.0 + 100.0)
        assert probe == [0.0, 0.5, 0.5, 0.0]

    def test_window_shorter_than_old_polling_step_is_not_missed(self):
        # A 5-second window between 17-second workload steps: the polling
        # engine could miss it entirely; boundary ticks cannot.
        engine, scheduler, _ = make_rig(
            [SlowShard(start=20.0, duration=5.0, shard=0, latency=0.25)]
        )
        scheduler.run_until(10_000.0 + 40.0)
        assert transitions(engine) == [
            (20.0, "window_open", "slow_shard"),
            (25.0, "window_close", "slow_shard"),
        ]

    def test_boundaries_beyond_the_horizon_stay_pending(self):
        engine, scheduler, _ = make_rig(
            [SlowShard(start=50.0, duration=100.0, shard=0, latency=0.25)]
        )
        scheduler.run_until(10_000.0 + 60.0)
        assert transitions(engine) == [(50.0, "window_open", "slow_shard")]
        assert len(scheduler) == 1  # the close tick is still queued

    def test_multiple_faults_get_independent_boundaries(self):
        engine, scheduler, _ = make_rig(
            [
                SlowShard(start=10.0, duration=20.0, shard=0, latency=0.25),
                ClockSkew(start=15.0, duration=30.0, skew=90.0),
            ]
        )
        scheduler.run_until(10_000.0 + 100.0)
        assert transitions(engine) == [
            (10.0, "window_open", "slow_shard"),
            (15.0, "window_open", "clock_skew"),
            (30.0, "window_close", "slow_shard"),
            (45.0, "window_close", "clock_skew"),
        ]

    def test_shared_boundary_produces_one_tick_both_transitions(self):
        # Fault A ends exactly when fault B begins: one scheduled tick
        # handles the close and the open, in index order.
        engine, scheduler, _ = make_rig(
            [
                SlowShard(start=10.0, duration=10.0, shard=0, latency=0.25),
                ClockSkew(start=20.0, duration=10.0, skew=90.0),
            ]
        )
        handles = 3  # 10, 20 (shared), 30
        assert len(scheduler) == handles
        scheduler.run_until(10_000.0 + 100.0)
        assert transitions(engine) == [
            (10.0, "window_open", "slow_shard"),
            (20.0, "window_open", "clock_skew"),
            (20.0, "window_close", "slow_shard"),
            (30.0, "window_close", "clock_skew"),
        ]

"""The resolver-outage plan: LDAP goes dark mid-run, nobody notices.

The shipped ``resolver-outage`` plan wires the workload's MFACenter with
an LDAP-primary resolver chain and kills the LDAP resolver for ten
minutes.  The directory resolver must absorb the traffic (failover, not
denial), the chain's health tracking must demote the dead primary, and
the run must stay violation-free and bit-for-bit deterministic.
"""

import json

import pytest

from repro.chaos import WorkloadConfig, run_chaos, shipped_plans
from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import ResolverOutage
from repro.chaos.plan import FaultPlan

from .conftest import report_for


@pytest.fixture(scope="module")
def outage_report():
    return run_chaos(shipped_plans()["resolver-outage"], WorkloadConfig(seed=101))


def events_of(report, kind):
    return [
        event
        for event in (json.loads(line) for line in report.event_lines)
        if event["kind"] == kind
    ]


class TestFailoverUnderOutage:
    def test_outage_and_restore_events_bracket_the_window(self, outage_report):
        (outage,) = events_of(outage_report, "resolver_outage")
        (restore,) = events_of(outage_report, "resolver_restore")
        assert outage["resolver"] == "ldap"
        assert outage["t"] == 300 and restore["t"] == 900

    def test_traffic_failed_over_instead_of_failing(self, outage_report):
        (restore,) = events_of(outage_report, "resolver_restore")
        assert restore["failovers"] >= 1
        assert outage_report.availability() == 1.0

    def test_dead_primary_demoted_while_dark(self, outage_report):
        # The outage event snapshots the chain right after the first
        # failover: ldap already took its scoring hit.
        (outage,) = events_of(outage_report, "resolver_outage")
        (restore,) = events_of(outage_report, "resolver_restore")
        assert outage["state"] in ("closed", "half_open", "open")
        assert restore["state"] in ("closed", "half_open", "open")

    def test_no_invariant_violations(self, outage_report):
        assert outage_report.invariant_violations() == []


class TestDeterminism:
    def test_same_seed_same_digest(self, outage_report):
        rerun = run_chaos(
            shipped_plans()["resolver-outage"], WorkloadConfig(seed=101)
        )
        assert rerun.digest() == outage_report.digest()

    def test_different_seed_different_digest(self, outage_report, seed):
        if seed == 101:
            pytest.skip("same seed as the module fixture")
        assert report_for("resolver-outage", seed).digest() != outage_report.digest()


class TestFaultValidation:
    def test_fault_requires_a_resolver_name(self):
        with pytest.raises(ValueError, match="needs a resolver name"):
            ResolverOutage(start=0, duration=10)

    def test_engine_without_chain_refuses_the_fault(self, clock):
        plan = FaultPlan(
            "bad", "outage with nothing attached",
            (ResolverOutage(start=0, duration=10, resolver="ldap"),),
        )
        engine = ChaosEngine(plan, clock=clock, seed=1)
        clock.advance(1.0)
        with pytest.raises(TypeError, match="no resolver chain attached"):
            engine.tick()

    def test_unknown_resolver_name_refused(self, clock):
        from repro.resolvers import ResolverChain

        plan = FaultPlan(
            "bad", "outage names a resolver the chain lacks",
            (ResolverOutage(start=0, duration=10, resolver="ghost"),),
        )
        engine = ChaosEngine(
            plan, clock=clock, seed=1, resolvers=ResolverChain(clock=clock)
        )
        clock.advance(1.0)
        with pytest.raises(TypeError, match="ghost"):
            engine.tick()

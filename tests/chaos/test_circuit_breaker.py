"""Circuit breaker and health tracking for the RADIUS client.

Covers the state machine directly (HealthTracker) and through the wire
(RADIUSClient against a real in-process farm), including the regression
the satellite demands: a recovered server is probed and re-admitted
within one probe interval even while its peers are healthy.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.server import OTPServer
from repro.radius.client import RADIUSClient
from repro.radius.health import (
    CIRCUIT_GAUGE_VALUE,
    CircuitState,
    FailoverPolicy,
    HealthTracker,
)
from repro.radius.server import RADIUSServer
from repro.radius.transport import UDPFabric

SECRET = b"breaker-secret"


class TestHealthTracker:
    def test_opens_after_threshold(self):
        tracker = HealthTracker(["a"], FailoverPolicy(failure_threshold=3))
        for i in range(2):
            tracker.on_failure("a", now=float(i))
            assert tracker.state("a") is CircuitState.CLOSED
        tracker.on_failure("a", now=2.0)
        assert tracker.state("a") is CircuitState.OPEN

    def test_success_resets_consecutive_failures(self):
        tracker = HealthTracker(["a"], FailoverPolicy(failure_threshold=3))
        tracker.on_failure("a", 0.0)
        tracker.on_failure("a", 1.0)
        tracker.on_success("a", 2.0)
        tracker.on_failure("a", 3.0)
        tracker.on_failure("a", 4.0)
        assert tracker.state("a") is CircuitState.CLOSED

    def test_probe_due_after_interval(self):
        policy = FailoverPolicy(failure_threshold=1, probe_interval=30.0)
        tracker = HealthTracker(["a"], policy)
        tracker.on_failure("a", 10.0)
        assert tracker.state("a") is CircuitState.OPEN
        assert not tracker.probe_due("a", 39.9)
        assert tracker.probe_due("a", 40.0)

    def test_failed_probe_reopens_with_fresh_timer(self):
        policy = FailoverPolicy(failure_threshold=1, probe_interval=30.0)
        tracker = HealthTracker(["a"], policy)
        tracker.on_failure("a", 0.0)
        tracker.begin_probe("a", 30.0)
        assert tracker.state("a") is CircuitState.HALF_OPEN
        tracker.on_failure("a", 31.0)
        assert tracker.state("a") is CircuitState.OPEN
        # Timer restarted at 31 AND the interval doubled (probe backoff).
        assert not tracker.probe_due("a", 61.0)
        assert tracker.probe_due("a", 91.0)

    def test_probe_schedule_backs_off_exponentially(self):
        policy = FailoverPolicy(
            failure_threshold=1,
            probe_interval=30.0,
            probe_backoff=2.0,
            probe_interval_max=100.0,
        )
        tracker = HealthTracker(["a"], policy)
        tracker.on_failure("a", 0.0)
        now, waits = 0.0, []
        for _ in range(4):
            step = 0.0
            while not tracker.probe_due("a", now + step):
                step += 1.0
            waits.append(step)
            now += step
            tracker.begin_probe("a", now)
            tracker.on_failure("a", now)
        assert waits == [30.0, 60.0, 100.0, 100.0]  # doubled, then capped
        # One success resets the schedule to the base interval.
        tracker.begin_probe("a", now)
        tracker.on_success("a", now)
        tracker.on_failure("a", now)  # re-open (threshold 1)
        assert not tracker.probe_due("a", now + 29.0)
        assert tracker.probe_due("a", now + 30.0)

    def test_successful_probe_closes(self):
        policy = FailoverPolicy(failure_threshold=1)
        tracker = HealthTracker(["a"], policy)
        tracker.on_failure("a", 0.0)
        tracker.begin_probe("a", 30.0)
        tracker.on_success("a", 30.5)
        assert tracker.state("a") is CircuitState.CLOSED
        health = tracker.health("a")
        assert health.consecutive_failures == 0
        assert health.successes == 1

    def test_score_is_ewma(self):
        policy = FailoverPolicy(health_decay=0.5, failure_threshold=10)
        tracker = HealthTracker(["a"], policy)
        assert tracker.health("a").score == 1.0
        tracker.on_failure("a", 0.0)
        assert tracker.health("a").score == 0.5
        tracker.on_success("a", 1.0)
        assert tracker.health("a").score == 0.75

    def test_gauge_encoding_ordered_by_severity(self):
        assert (
            CIRCUIT_GAUGE_VALUE[CircuitState.CLOSED]
            < CIRCUIT_GAUGE_VALUE[CircuitState.HALF_OPEN]
            < CIRCUIT_GAUGE_VALUE[CircuitState.OPEN]
        )


@pytest.fixture
def rig():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    otp = OTPServer(clock=clock, rng=random.Random(5))
    fabric = UDPFabric(rng=random.Random(6))
    farm = []
    for i in range(3):
        server = RADIUSServer(f"10.0.7.{i}:1812", fabric, otp)
        server.add_client("10.", SECRET)
        farm.append(server)
    client = RADIUSClient(
        fabric,
        [s.address for s in farm],
        SECRET,
        "10.1.1.5",
        rng=random.Random(7),
        clock=clock,
        policy=FailoverPolicy(failure_threshold=3, probe_interval=30.0),
    )
    devices = {}
    for user in ("grace", "heidi"):
        _, secret = otp.enroll_soft(user)
        devices[user] = TOTPGenerator(secret=secret, clock=clock)
    return clock, fabric, farm, client, devices


class TestClientCircuits:
    def test_dead_server_ejected_and_ordered_last(self, rig):
        clock, fabric, farm, client, devices = rig
        fabric.set_down(farm[0].address)
        assert client.authenticate("grace", devices["grace"].current_code()).ok
        assert client.health.state(farm[0].address) is CircuitState.OPEN
        # While the circuit cools, calls spend nothing on the dead server
        # (a different user, so TOTP replay protection stays out of the way).
        attempts_before = client.per_server_attempts[farm[0].address]
        clock.advance(4)  # well inside the probe interval
        assert client.authenticate("heidi", devices["heidi"].current_code()).ok
        assert client.per_server_attempts[farm[0].address] == attempts_before

    def test_recovered_server_readmitted_within_probe_interval(self, rig):
        # The satellite regression: peers stay healthy the whole time, so
        # only the half-open probe path can re-admit the recovered server.
        clock, fabric, farm, client, devices = rig
        dead = farm[0].address
        fabric.set_down(dead)
        assert client.authenticate("grace", devices["grace"].current_code()).ok
        assert client.health.state(dead) is CircuitState.OPEN

        fabric.set_down(dead, False)  # the server comes back
        clock.advance(31)  # one probe interval passes (and a fresh TOTP step)
        assert client.authenticate("grace", devices["grace"].current_code()).ok
        assert client.health.state(dead) is CircuitState.CLOSED
        # The probe actually hit the recovered server, not just a peer.
        assert client.per_server_attempts[dead] >= 4

    def test_total_outage_recovery_not_invisible(self, rig):
        # All circuits open, then the farm returns: the next call inside
        # the cooling window still reaches a server (last-resort attempts).
        clock, fabric, farm, client, devices = rig
        for server in farm:
            fabric.set_down(server.address)
        assert not client.authenticate("grace", devices["grace"].current_code()).ok
        assert all(
            client.health.state(s.address) is CircuitState.OPEN for s in farm
        )
        for server in farm:
            fabric.set_down(server.address, False)
        clock.advance(5)  # well inside the probe interval; code not consumed
        assert client.authenticate("grace", devices["grace"].current_code()).ok

    def test_blind_mode_keeps_paper_behaviour(self, rig):
        clock, fabric, farm, _, devices = rig
        blind = RADIUSClient(
            fabric,
            [s.address for s in farm],
            SECRET,
            "10.1.1.6",
            rng=random.Random(8),
            clock=clock,
            health_aware=False,
        )
        device = devices["grace"]
        fabric.set_down(farm[0].address)
        # Four calls walk the rotation all the way around: blind round-robin
        # burns a full retry budget on the dead server every time the
        # rotation starts there, however long it has been down.
        for _ in range(4):
            assert blind.authenticate("grace", device.current_code()).ok
            clock.advance(31)
        assert blind.per_server_attempts[farm[0].address] == 2 * blind._retries

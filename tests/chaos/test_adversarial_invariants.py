"""Adversarial invariants under infrastructure faults.

The honeytoken-alarm and risk-flag guarantees are cheap to keep when the
network is healthy; the point of wiring an attacker into the chaos
harness is to show they also hold *mid-fault* — during a resync storm
(replay defenses under maximum pressure) and a network partition (the
decoy's shard may be unreachable).  Two invariants, judged per attacker
attempt:

e. no honeytoken use goes unalarmed;
f. no attacker success goes unflagged in the risk stage.

Seeds come from ``CHAOS_SEEDS`` (the ``seed`` fixture), matching the
other whole-workload suites.
"""

from functools import lru_cache

import pytest

from repro.chaos import WorkloadConfig, run_chaos, shipped_plans

PLANS = ("resync-storm", "partition")


@lru_cache(maxsize=None)
def adversarial_report(plan_name: str, seed: int):
    plan = shipped_plans()[plan_name]
    return run_chaos(plan, WorkloadConfig(seed=seed, adversarial=True))


@pytest.fixture(params=PLANS)
def plan_name(request):
    return request.param


class TestAdversarialInvariants:
    def test_zero_adversarial_violations(self, plan_name, seed):
        report = adversarial_report(plan_name, seed)
        assert report.adversarial_violations() == []

    def test_attacker_actually_ran(self, plan_name, seed):
        report = adversarial_report(plan_name, seed)
        events = report.attacker_events()
        assert len(events) == report.config.attacker_attempts
        assert any(e["decoy"] for e in events)

    def test_every_decoy_hit_alarmed(self, plan_name, seed):
        report = adversarial_report(plan_name, seed)
        decoy_hits = [e for e in report.attacker_events() if e["decoy"]]
        assert decoy_hits
        for event in decoy_hits:
            assert event["alarmed"], event

    def test_adversarial_violations_roll_into_invariants(self, plan_name, seed):
        """The summary gate CI reads includes the adversarial verdicts."""
        report = adversarial_report(plan_name, seed)
        summary = report.summary()
        assert summary["adversarial_violations"] == 0
        assert summary["attacker_attempts"] == report.config.attacker_attempts
        for violation in report.adversarial_violations():
            assert violation in report.invariant_violations()


class TestHonestTrafficUnharmed:
    def test_false_accept_and_storage_invariants_still_hold(self, plan_name, seed):
        report = adversarial_report(plan_name, seed)
        assert report.false_accepts() == []
        assert report.storage_violations() == []

    def test_availability_not_degraded_by_attacker(self, plan_name, seed):
        from tests.chaos.conftest import report_for

        adversarial = adversarial_report(plan_name, seed)
        plain = report_for(plan_name, seed)
        assert adversarial.availability() >= plain.availability() - 1e-9


class TestDeterminism:
    def test_adversarial_digest_reproducible(self, seed):
        plan = shipped_plans()["resync-storm"]
        a = run_chaos(plan, WorkloadConfig(seed=seed, adversarial=True))
        b = run_chaos(plan, WorkloadConfig(seed=seed, adversarial=True))
        assert a.digest() == b.digest()
        assert a.summary() == b.summary()

    def test_plain_run_digest_unchanged_by_adversarial_code(self, seed):
        """Adding the attacker must not perturb non-adversarial runs: the
        same plan without ``adversarial`` keeps its historical digest."""
        from tests.chaos.conftest import report_for

        plain = report_for("resync-storm", seed)
        rerun = run_chaos(
            shipped_plans()["resync-storm"], WorkloadConfig(seed=seed)
        )
        assert rerun.digest() == plain.digest()
        assert not rerun.attacker_events()

"""Shared fixtures for the chaos invariant suite.

``CHAOS_SEEDS`` (comma-separated integers, default ``101``) selects which
seeds the whole-workload invariant tests run under; CI's chaos-smoke job
sets two.  Reports are cached per ``(plan, seed)`` because one run drives
120 full-stack logins and several tests interrogate the same run.
"""

import os
from functools import lru_cache

import pytest

from repro.chaos import WorkloadConfig, run_chaos, shipped_plans


def chaos_seeds():
    raw = os.environ.get("CHAOS_SEEDS", "101")
    return [int(part) for part in raw.split(",") if part.strip()]


@lru_cache(maxsize=None)
def report_for(plan_name: str, seed: int):
    plan = shipped_plans()[plan_name]
    return run_chaos(plan, WorkloadConfig(seed=seed))


@pytest.fixture(params=chaos_seeds(), ids=lambda s: f"seed{s}")
def seed(request):
    return request.param

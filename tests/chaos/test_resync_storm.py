"""The resync-storm SLA proof: interactive p99 stays flat while a 10k-item
batch backfill drains through the ingestion queue.

Three claims, each its own test class:

* **Isolation** — interactive login p99 under the storm is within 1.5x of
  an idle ingest-enabled baseline (in practice it is identical: capped
  promotion means batch never outranks interactive);
* **Drain** — the backfill fully completes inside its fault window (the
  ``backfill_drain`` event reports zero remaining, and a nonzero remainder
  would be an invariant violation);
* **Shed order** — under forced admission overload the queue sheds
  ``batch`` before ``critical``, end to end through the deployment's own
  :class:`TokenBucketLimiter`.
"""

import json

import pytest

from repro.chaos import WorkloadConfig, run_chaos, shipped_plans

from .conftest import report_for


@pytest.fixture(scope="module")
def storm_report():
    return run_chaos(shipped_plans()["resync-storm"], WorkloadConfig(seed=101))


@pytest.fixture(scope="module")
def idle_report():
    # Same workload, same queue wiring, no backfill: the latency baseline.
    return run_chaos(shipped_plans()["baseline"], WorkloadConfig(seed=101, ingest=True))


class TestInteractiveIsolation:
    def test_p99_within_budget_of_idle_baseline(self, storm_report, idle_report):
        idle_p99 = idle_report.interactive_p99()
        storm_p99 = storm_report.interactive_p99()
        assert idle_p99 > 0.0, "queue service cost must make latency measurable"
        assert storm_p99 <= idle_p99 * 1.5

    def test_latencies_cover_the_storm_window(self, storm_report):
        # The workload kept logging in during [200, 1700): the isolation
        # claim is vacuous unless honest attempts landed inside the window.
        assert len(storm_report.interactive_latencies()) >= 50

    def test_p99_reported_in_summary(self, storm_report):
        summary = storm_report.summary()
        assert summary["interactive_p99_seconds"] == round(
            storm_report.interactive_p99(), 6
        )


class TestBackfillDrain:
    def _drain_event(self, report):
        events = [
            json.loads(line)
            for line in report.event_lines
        ]
        drains = [e for e in events if e["kind"] == "backfill_drain"]
        assert len(drains) == 1
        return drains[0], events

    def test_backfill_fully_drains_inside_window(self, storm_report):
        drain, events = self._drain_event(storm_report)
        assert drain["remaining"] == 0
        assert drain["completed"] == 10_000
        starts = [e for e in events if e["kind"] == "backfill_start"]
        assert starts and starts[0]["items"] == 10_000
        assert starts[0]["depth"] >= 10_000

    def test_no_invariant_violations(self, storm_report):
        assert storm_report.invariant_violations() == []
        assert storm_report.backfill_violations() == []

    def test_undrained_backfill_is_a_violation(self):
        # Choke the pump so the window closes with work still queued: the
        # report must call that out rather than quietly passing.
        config = WorkloadConfig(seed=101, pump_interval=1.0, pump_items=1)
        report = run_chaos(shipped_plans()["resync-storm"], config)
        violations = report.backfill_violations()
        assert violations
        assert any("backfill" in v for v in violations)
        assert report.invariant_violations() != []

    def test_in_shipped_invariant_catalogue(self, seed):
        # resync-storm rides the same 4-invariant suite as every plan.
        report = report_for("resync-storm", seed)
        assert report.false_accepts() == []
        assert report.availability() >= report.plan.availability_floor


class TestDeterminism:
    def test_same_seed_same_event_log(self, storm_report):
        fresh = run_chaos(shipped_plans()["resync-storm"], WorkloadConfig(seed=101))
        assert fresh.event_lines == storm_report.event_lines
        assert fresh.digest() == storm_report.digest()


class TestForcedOverloadShedOrder:
    def test_batch_shed_before_critical_through_deployment_limiter(self):
        import random

        from repro.common.clock import SimulatedClock
        from repro.core import MFACenter
        from repro.ingest import IngestQueue, PriorityClass
        from repro.policy import RateLimitConfig, TokenBucketLimiter

        clock = SimulatedClock.at("2016-10-05T09:00:00")
        center = MFACenter(clock=clock, rng=random.Random(11), ingest=True)
        center.add_system("stampede", mode="full")
        center.create_user("alice", password="pw")
        code = center.pair_training("alice")
        # Rebuild the deployment's queue with a starved admission bucket:
        # the overload knob, everything else identical.
        limiter = TokenBucketLimiter(RateLimitConfig(rate=0.1, burst=1.0), clock=clock)
        queue = IngestQueue(
            center.ingest_queue._runner, center.ingest_queue.config,
            clock=clock, limiter=limiter,
        )
        assert queue.submit_item(("alice", code), PriorityClass.BATCH).result().ok
        # Bucket now empty: batch is refused at the door...
        refused = queue.submit_item(("alice", code), PriorityClass.BATCH).result()
        assert not refused.ok and "admission throttled" in refused.reason
        # ...while critical and interactive still get through.
        assert queue.submit_item(("alice", code), PriorityClass.CRITICAL).result().ok
        assert queue.submit_item(("alice", code), PriorityClass.INTERACTIVE).result().ok
        snap = queue.snapshot()
        assert snap["classes"]["batch"]["shed"] == 1
        assert snap["classes"]["critical"]["shed"] == 0
        assert snap["classes"]["interactive"]["shed"] == 0

"""Honeytoken decoys: validate like soft tokens, alarm on any use."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.totp import totp_at
from repro.extensions.risk import RiskEngine, RiskWeights
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.otpserver.results import ValidateStatus
from repro.otpserver.server import OTPServer
from repro.otpserver.tokens import TokenType
from repro.policy import PolicyEngine, RiskStage
from repro.telemetry import Registry

ATTACKER_IP = "203.0.113.9"


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T12:00:00")


@pytest.fixture
def server(clock):
    return OTPServer(clock=clock, rng=random.Random(5))


def enroll(server):
    return server.enroll_honeytoken("decoy1")


class TestEnrollment:
    def test_serial_and_type(self, server):
        serial, secret = enroll(server)
        assert serial.startswith("LSHY")
        assert len(secret) >= 16
        record = server.user_tokens("decoy1")[0]
        assert record.token_type is TokenType.HONEY

    def test_counted_in_type_breakdown(self, server):
        enroll(server)
        assert server.token_count_by_type()["honey"] == 1

    def test_one_pairing_rule_applies(self, server):
        enroll(server)
        with pytest.raises(Exception):
            server.enroll_soft("decoy1")

    def test_admin_api_init(self, clock):
        rng = random.Random(5)
        server = OTPServer(clock=clock, rng=rng)
        api = AdminAPI(server, rng=rng)
        api.add_admin("portal", "secret")
        client = AdminAPIClient(api, "portal", "secret", rng=rng)
        body = client.call("POST", "/admin/init", {"user": "decoy1", "type": "honey"})
        assert body["serial"].startswith("LSHY")
        assert bytes.fromhex(body["otpkey"])


class TestIndistinguishability:
    """The attacker holding the stolen seed must learn nothing from the
    server's responses: decoy answers match a soft token's exactly."""

    def test_correct_code_is_accepted(self, server, clock):
        _, secret = enroll(server)
        result = server.validate("decoy1", totp_at(secret, clock.now()))
        assert result.status is ValidateStatus.OK

    def test_responses_match_soft_token(self, clock):
        rng = random.Random(5)
        honey_server = OTPServer(clock=clock, rng=rng)
        _, honey_secret = honey_server.enroll_honeytoken("u")
        soft_server = OTPServer(clock=clock, rng=random.Random(5))
        _, soft_secret = soft_server.enroll_soft("u")
        code = totp_at(honey_secret, clock.now())
        probes = [code, code, "000000"]  # accept, replay, wrong
        for probe_h, probe_s in zip(probes, [totp_at(soft_secret, clock.now()), totp_at(soft_secret, clock.now()), "000000"]):
            honey = honey_server.validate("u", probe_h)
            soft = soft_server.validate("u", probe_s)
            assert honey.status is soft.status
            assert honey.reason == soft.reason


class TestAlarms:
    def test_accepted_use_alarms(self, server, clock):
        _, secret = enroll(server)
        server.validate("decoy1", totp_at(secret, clock.now()), source=ATTACKER_IP)
        assert len(server.honeytoken_alarms) == 1
        alarm = server.honeytoken_alarms[0]
        assert alarm["accepted"] is True
        assert alarm["source"] == ATTACKER_IP

    def test_probe_with_wrong_code_alarms(self, server):
        enroll(server)
        server.validate("decoy1", "000000", source=ATTACKER_IP)
        assert len(server.honeytoken_alarms) == 1
        assert server.honeytoken_alarms[0]["accepted"] is False

    def test_null_request_is_not_a_use(self, server):
        enroll(server)
        server.validate("decoy1", None, source=ATTACKER_IP)
        assert server.honeytoken_alarms == []

    def test_alarm_lands_in_audit_log(self, server, clock):
        _, secret = enroll(server)
        server.validate("decoy1", totp_at(secret, clock.now()), source=ATTACKER_IP)
        events = server.audit.entries(action="honeytoken_alarm")
        assert len(events) == 1
        assert ATTACKER_IP in events[0].detail

    def test_alarm_counts_in_telemetry(self, clock):
        telemetry = Registry()
        server = OTPServer(clock=clock, rng=random.Random(5), telemetry=telemetry)
        _, secret = server.enroll_honeytoken("decoy1")
        server.validate("decoy1", totp_at(secret, clock.now()))
        server.validate("decoy1", "000000")
        counters = telemetry.snapshot()["counters"]
        metric = next(
            c for c in counters if c["name"] == "otp_honeytoken_alarms_total"
        )
        series = {s["labels"]["result"]: s["value"] for s in metric["series"]}
        assert series == {"accepted": 1.0, "probed": 1.0}

    def test_alarm_flags_through_risk_stage(self, clock):
        stage = RiskStage(RiskEngine(clock=clock))
        server = OTPServer(
            clock=clock,
            rng=random.Random(5),
            policy=PolicyEngine(clock=clock, risk=stage),
        )
        _, secret = server.enroll_honeytoken("decoy1")
        server.validate("decoy1", totp_at(secret, clock.now()), source=ATTACKER_IP)
        assert stage.flags_for("decoy1") == 1
        assert stage.snapshot()["honeytoken_alarms"] == 1

    def test_risk_denied_probe_still_alarms(self, clock):
        """A probe refused upstream by the risk stage never reaches the
        dispatch handler — the policy stage must alarm instead, so no
        decoy use can go unrecorded."""
        stage = RiskStage(
            RiskEngine(clock=clock, weights=RiskWeights(watchlisted_network=1.0))
        )
        stage.add_watchlist("203.0.113.0/24")
        server = OTPServer(
            clock=clock,
            rng=random.Random(5),
            policy=PolicyEngine(clock=clock, risk=stage),
        )
        _, secret = server.enroll_honeytoken("decoy1")
        result = server.validate(
            "decoy1", totp_at(secret, clock.now()), source=ATTACKER_IP
        )
        assert result.status is ValidateStatus.REJECT
        assert result.reason.startswith("risk score")
        assert len(server.honeytoken_alarms) == 1
        assert server.honeytoken_alarms[0]["accepted"] is False

"""Audit log queries."""

import pytest

from repro.common.clock import SimulatedClock
from repro.otpserver.audit import AuditLog


@pytest.fixture
def log():
    clock = SimulatedClock(1000.0)
    audit = AuditLog(clock)
    audit.record("validate", "u1", "S1", success=True)
    clock.advance(10)
    audit.record("validate", "u1", "S1", success=False, detail="bad code")
    clock.advance(10)
    audit.record("validate", "u2", "S2", success=True)
    audit.record("lockout", "u3", "S3", success=False)
    return audit


class TestQueries:
    def test_length(self, log):
        assert len(log) == 4

    def test_filter_by_user(self, log):
        assert len(log.entries(user_id="u1")) == 2

    def test_filter_by_action(self, log):
        assert len(log.entries(action="validate")) == 3

    def test_filter_by_since(self, log):
        assert len(log.entries(since=1015.0)) == 2

    def test_combined_filters(self, log):
        entries = log.entries(user_id="u1", action="validate", since=1005.0)
        assert len(entries) == 1 and not entries[0].success

    def test_lockout_events(self, log):
        events = log.lockout_events()
        assert len(events) == 1 and events[0].user_id == "u3"

    def test_success_failure_counts(self, log):
        assert log.success_count("validate") == 2
        assert log.failure_count("validate") == 1

    def test_ids_sequential(self, log):
        ids = [e.entry_id for e in log.entries()]
        assert ids == sorted(ids)

    def test_entries_immutable(self, log):
        entry = log.entries()[0]
        with pytest.raises(AttributeError):
            entry.success = False

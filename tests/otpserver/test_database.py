"""Relational store: schema, constraints, indices, transactions."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import NotFoundError, ValidationError
from repro.otpserver.database import Database, TableSchema


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "tokens",
        columns=("serial", "user_id", "type", "active"),
        primary_key="serial",
        unique=("user_id",),
        indexed=("type",),
    )
    return database


class TestSchema:
    def test_pk_must_be_column(self):
        with pytest.raises(ValueError):
            TableSchema(columns=("a",), primary_key="b")

    def test_constraint_columns_validated(self):
        with pytest.raises(ValueError):
            TableSchema(columns=("a",), primary_key="a", unique=("z",))

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValidationError):
            db.create_table("tokens", ("x",), "x")

    def test_missing_table(self, db):
        with pytest.raises(NotFoundError):
            db.table("nope")


class TestCRUD:
    def test_insert_and_get(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1", "type": "soft", "active": True})
        assert t.get("S1")["user_id"] == "u1"

    def test_missing_columns_default_none(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1"})
        assert t.get("S1")["type"] is None

    def test_unknown_column_rejected(self, db):
        with pytest.raises(ValidationError):
            db.table("tokens").insert({"serial": "S1", "bogus": 1})

    def test_duplicate_pk_rejected(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1"})
        with pytest.raises(ValidationError, match="duplicate primary key"):
            t.insert({"serial": "S1"})

    def test_missing_pk_rejected(self, db):
        with pytest.raises(ValidationError, match="missing primary key"):
            db.table("tokens").insert({"user_id": "u1"})

    def test_update(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "active": True})
        t.update("S1", {"active": False})
        assert t.get("S1")["active"] is False

    def test_update_missing_row(self, db):
        with pytest.raises(NotFoundError):
            db.table("tokens").update("nope", {"active": False})

    def test_update_pk_rejected(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1"})
        with pytest.raises(ValidationError):
            t.update("S1", {"serial": "S2"})

    def test_delete(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1"})
        t.delete("S1")
        assert not t.exists("S1")
        with pytest.raises(NotFoundError):
            t.delete("S1")

    def test_rows_are_copies(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "active": True})
        row = t.get("S1")
        row["active"] = False
        assert t.get("S1")["active"] is True


class TestConstraintsAndIndices:
    def test_unique_violation_on_insert(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1"})
        with pytest.raises(ValidationError, match="unique"):
            t.insert({"serial": "S2", "user_id": "u1"})

    def test_unique_violation_on_update(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1"})
        t.insert({"serial": "S2", "user_id": "u2"})
        with pytest.raises(ValidationError, match="unique"):
            t.update("S2", {"user_id": "u1"})

    def test_unique_lookup(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1"})
        assert t.get_by_unique("user_id", "u1")["serial"] == "S1"
        with pytest.raises(NotFoundError):
            t.get_by_unique("user_id", "u9")

    def test_unique_freed_after_delete(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1"})
        t.delete("S1")
        t.insert({"serial": "S2", "user_id": "u1"})  # no violation

    def test_unique_freed_after_update(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1"})
        t.update("S1", {"user_id": "u2"})
        t.insert({"serial": "S2", "user_id": "u1"})

    def test_indexed_select(self, db):
        t = db.table("tokens")
        for i, kind in enumerate(["soft", "soft", "sms"]):
            t.insert({"serial": f"S{i}", "user_id": f"u{i}", "type": kind})
        assert len(t.select(where={"type": "soft"})) == 2
        assert t.count(where={"type": "sms"}) == 1

    def test_index_maintained_on_update(self, db):
        t = db.table("tokens")
        t.insert({"serial": "S1", "user_id": "u1", "type": "soft"})
        t.update("S1", {"type": "sms"})
        assert t.select(where={"type": "soft"}) == []
        assert len(t.select(where={"type": "sms"})) == 1

    def test_predicate_select(self, db):
        t = db.table("tokens")
        for i in range(5):
            t.insert({"serial": f"S{i}", "user_id": f"u{i}", "active": i % 2 == 0})
        assert len(t.select(predicate=lambda r: r["active"])) == 3


class TestTransactions:
    def test_commit(self, db):
        with db.transaction():
            db.table("tokens").insert({"serial": "S1"})
        assert db.table("tokens").exists("S1")

    def test_rollback_on_exception(self, db):
        db.table("tokens").insert({"serial": "S0"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("tokens").insert({"serial": "S1"})
                db.table("tokens").delete("S0")
                raise RuntimeError("boom")
        assert db.table("tokens").exists("S0")
        assert not db.table("tokens").exists("S1")

    def test_rollback_restores_unique_index(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("tokens").insert({"serial": "S1", "user_id": "u1"})
                raise RuntimeError("boom")
        # The uniqueness slot must be free again.
        db.table("tokens").insert({"serial": "S2", "user_id": "u1"})

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=20, unique=True))
    def test_insert_select_consistency(self, keys):
        database = Database()
        t = database.create_table("t", ("k", "v"), "k")
        for k in keys:
            t.insert({"k": k, "v": k * 2})
        assert len(t.select()) == len(keys)
        for k in keys:
            assert t.get(k)["v"] == k * 2

"""Admin REST API: routes, digest gate, client handshake."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ProtocolError, ValidationError
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.otpserver.server import OTPServer
from repro.otpserver.tokens import HardTokenBatch


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def server(clock):
    return OTPServer(clock=clock, rng=random.Random(1))


@pytest.fixture
def api(server):
    a = AdminAPI(server, rng=random.Random(2))
    a.add_admin("portal", "s3cret")
    return a


@pytest.fixture
def client(api):
    return AdminAPIClient(api, "portal", "s3cret", rng=random.Random(3))


class TestAuthenticationGate:
    def test_unauthenticated_gets_401_with_challenge(self, api):
        response = api.request("GET", "/admin/show", {"user": "x"})
        assert response.status == 401
        assert response.challenge is not None

    def test_bad_password_rejected(self, api):
        bad = AdminAPIClient(api, "portal", "wrong", rng=random.Random(4))
        with pytest.raises(ProtocolError, match="rejected"):
            bad.call("GET", "/admin/show", {"user": "x"})

    def test_valid_client_succeeds(self, client, server):
        server.enroll_soft("alice")
        body = client.call("GET", "/admin/show", {"user": "alice"})
        assert body["tokens"][0]["type"] == "soft"


class TestRoutes:
    def test_unknown_route_404(self, api, client):
        with pytest.raises(ValidationError):
            client.call("GET", "/admin/nonexistent", {})

    def test_policy_snapshot(self, client):
        body = client.call("GET", "/admin/policy")
        assert body["ladder"]["effective_mode"] == "full"
        assert body["lockout"]["threshold"] == 20
        assert body["exemptions"] == {"configured": False}
        assert body["rate_limit"] == {"configured": False}
        assert body["concurrency"]["lock_stripes"] == 64

    def test_policy_requires_auth(self, api):
        response = api.request("GET", "/admin/policy")
        assert response.status == 401

    def test_init_soft(self, client, server):
        body = client.call("POST", "/admin/init", {"user": "alice", "type": "soft"})
        assert "serial" in body and "otpkey" in body
        assert server.has_pairing("alice")

    def test_init_sms(self, client, server):
        body = client.call(
            "POST", "/admin/init", {"user": "carol", "type": "sms", "phone": "5125551234"}
        )
        assert body["serial"].startswith("LSSM")

    def test_init_hard(self, client, server):
        batch = HardTokenBatch(3, rng=random.Random(5))
        server.import_hard_batch(batch)
        serial = batch.serials()[0]
        body = client.call(
            "POST", "/admin/init", {"user": "dave", "type": "hard", "serial": serial}
        )
        assert body["serial"] == serial

    def test_init_static(self, client, server):
        client.call("POST", "/admin/init", {"user": "tr", "type": "static", "otpkey": "123456"})
        assert server.validate("tr", "123456").ok

    def test_init_unknown_type(self, client):
        with pytest.raises(ValidationError, match="unknown token type"):
            client.call("POST", "/admin/init", {"user": "x", "type": "retina"})

    def test_missing_parameter(self, client):
        with pytest.raises(ValidationError, match="missing required parameter"):
            client.call("POST", "/admin/init", {"type": "soft"})

    def test_remove(self, client, server):
        server.enroll_soft("alice")
        body = client.call("POST", "/admin/remove", {"user": "alice"})
        assert body["removed"] == 1
        assert not server.has_pairing("alice")

    def test_reset(self, client, server):
        server.enroll_soft("alice")
        for _ in range(20):
            server.validate("alice", "000000")
        body = client.call("POST", "/admin/reset", {"user": "alice"})
        assert body["cleared"] == 1
        assert not server.is_locked("alice")

    def test_resync(self, client, server, clock):
        _, secret = server.enroll_soft("alice")
        device = TOTPGenerator(secret=secret, clock=clock, skew=3000)
        body = client.call(
            "POST",
            "/admin/resync",
            {"user": "alice", "otp1": device.current_code(),
             "otp2": device.code_at(clock.now() + 30)},
        )
        assert body["resynced"] is True

    def test_validate_check(self, client, server, clock):
        _, secret = server.enroll_soft("alice")
        device = TOTPGenerator(secret=secret, clock=clock)
        body = client.call(
            "POST", "/validate/check", {"user": "alice", "pass": device.current_code()}
        )
        assert body["status"] == "ok"

    def test_validate_check_null_triggers_sms(self, client, server, clock):
        server.enroll_sms("carol", "5125551234")
        body = client.call("POST", "/validate/check", {"user": "carol"})
        assert body["status"] == "challenge_sent"

    def test_request_counter(self, api, client, server):
        server.enroll_soft("alice")
        before = api.request_count
        client.call("GET", "/admin/show", {"user": "alice"})
        # One 401 challenge round plus the authenticated request.
        assert api.request_count == before + 2

"""The 20-strike boundary, exactly.

"if a user fails 20 consecutive validation attempts, the corresponding
token is deactivated" — these tests pin the fencepost: failure number
``threshold`` locks (not ``threshold + 1``), and a success one failure
short of the line resets the count entirely.
"""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.otpserver.server import OTPServer, OTPServerConfig, ValidateStatus

THRESHOLD = 20


@pytest.fixture
def server():
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    server = OTPServer(
        clock=clock,
        config=OTPServerConfig(lockout_threshold=THRESHOLD),
        rng=random.Random(7),
    )
    server.enroll_static("alice", "424242")
    return server


class TestLockoutBoundary:
    def test_threshold_minus_one_failures_do_not_lock(self, server):
        for _ in range(THRESHOLD - 1):
            assert not server.validate("alice", "000000").ok
        assert not server.is_locked("alice")
        (token,) = server.user_tokens("alice")
        assert token.failcount == THRESHOLD - 1
        assert server.validate("alice", "424242").ok

    def test_exactly_threshold_failures_lock(self, server):
        for _ in range(THRESHOLD):
            server.validate("alice", "000000")
        assert server.is_locked("alice")
        result = server.validate("alice", "424242")
        assert result.status is ValidateStatus.LOCKED
        assert "deactivated" in result.reason

    def test_success_at_threshold_minus_one_resets_failcount(self, server):
        for _ in range(THRESHOLD - 1):
            server.validate("alice", "000000")
        assert server.validate("alice", "424242").ok
        (token,) = server.user_tokens("alice")
        assert token.failcount == 0
        # The slate is clean: another threshold-1 run still does not lock.
        for _ in range(THRESHOLD - 1):
            server.validate("alice", "000000")
        assert not server.is_locked("alice")

    def test_failures_after_lockout_keep_it_locked(self, server):
        for _ in range(THRESHOLD + 5):
            server.validate("alice", "000000")
        assert server.is_locked("alice")

    def test_clear_failcount_reactivates(self, server):
        for _ in range(THRESHOLD):
            server.validate("alice", "000000")
        assert server.is_locked("alice")
        server.clear_failcount("alice")
        assert not server.is_locked("alice")
        assert server.validate("alice", "424242").ok

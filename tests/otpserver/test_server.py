"""OTP server: enrollment, validation paths, lockout, SMS lifecycle, admin."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NotFoundError, ValidationError
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.server import OTPServer, OTPServerConfig, ValidateStatus
from repro.otpserver.tokens import HardTokenBatch, TokenType


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def server(clock):
    return OTPServer(clock=clock, rng=random.Random(42))


def soft_device(server, clock, user="alice"):
    _, secret = server.enroll_soft(user)
    return TOTPGenerator(secret=secret, clock=clock)


class TestEnrollment:
    def test_soft_returns_secret_once(self, server):
        serial, secret = server.enroll_soft("alice")
        assert serial.startswith("LSSO")
        assert len(secret) == 20
        tokens = server.user_tokens("alice")
        assert tokens[0].token_type is TokenType.SOFT
        # The stored form is sealed, not the raw secret.
        assert tokens[0].sealed_secret != secret

    def test_one_pairing_per_user(self, server):
        server.enroll_soft("alice")
        with pytest.raises(ValidationError, match="already has a token"):
            server.enroll_sms("alice", "5125551234")

    def test_sms_requires_phone(self, server):
        with pytest.raises(ValidationError):
            server.enroll_sms("bob", "")

    def test_static_code_validation(self, server):
        with pytest.raises(ValidationError):
            server.enroll_static("train", "12345")  # five digits
        with pytest.raises(ValidationError):
            server.enroll_static("train", "abcdef")

    def test_static_regeneration_replaces(self, server):
        server.enroll_static("train", "111111")
        server.enroll_static("train", "222222")  # new session, new code
        assert len(server.user_tokens("train")) == 1
        assert server.validate("train", "222222").ok
        assert not server.validate("train", "111111").ok

    def test_hard_batch_import_and_assign(self, server):
        batch = HardTokenBatch(5, rng=random.Random(1))
        assert server.import_hard_batch(batch) == 5
        serial = batch.serials()[2]
        server.assign_hard("dave", serial)
        assert serial not in server.hard_inventory_serials()
        assert server.pairing_type("dave") is TokenType.HARD

    def test_assign_unknown_serial(self, server):
        with pytest.raises(NotFoundError):
            server.assign_hard("dave", "FT-nope")

    def test_duplicate_batch_import_rejected(self, server):
        batch = HardTokenBatch(3, rng=random.Random(2))
        server.import_hard_batch(batch)
        with pytest.raises(ValidationError):
            server.import_hard_batch(batch)

    def test_has_pairing(self, server):
        assert not server.has_pairing("alice")
        server.enroll_soft("alice")
        assert server.has_pairing("alice")


class TestValidation:
    def test_correct_code_accepted(self, server, clock):
        device = soft_device(server, clock)
        result = server.validate("alice", device.current_code())
        assert result.ok and result.status is ValidateStatus.OK

    def test_wrong_code_rejected(self, server, clock):
        soft_device(server, clock)
        assert server.validate("alice", "000000").status is ValidateStatus.REJECT

    def test_code_nullified_after_use(self, server, clock):
        device = soft_device(server, clock)
        code = device.current_code()
        assert server.validate("alice", code).ok
        assert not server.validate("alice", code).ok

    def test_no_token_status(self, server):
        assert server.validate("ghost", "123456").status is ValidateStatus.NO_TOKEN

    def test_null_code_against_soft_rejected(self, server, clock):
        soft_device(server, clock)
        assert server.validate("alice", None).status is ValidateStatus.REJECT

    def test_drift_tolerated(self, server, clock):
        device = soft_device(server, clock)
        device.skew = 290  # within the 300 s window
        assert server.validate("alice", device.current_code()).ok

    def test_excess_drift_rejected(self, server, clock):
        device = soft_device(server, clock)
        device.skew = 400
        assert not server.validate("alice", device.current_code()).ok

    def test_success_resets_failcount(self, server, clock):
        device = soft_device(server, clock)
        for _ in range(5):
            server.validate("alice", "000000")
        assert server.user_tokens("alice")[0].failcount == 5
        server.validate("alice", device.current_code())
        assert server.user_tokens("alice")[0].failcount == 0

    def test_pairing_confirmed_flag(self, server, clock):
        device = soft_device(server, clock)
        assert not server.user_tokens("alice")[0].pairing_confirmed
        server.validate("alice", device.current_code())
        assert server.user_tokens("alice")[0].pairing_confirmed

    def test_request_counter(self, server, clock):
        device = soft_device(server, clock)
        before = server.validate_requests
        server.validate("alice", device.current_code())
        assert server.validate_requests == before + 1


class TestLockout:
    def test_twenty_failures_deactivates(self, server, clock):
        """The paper's threshold: 20 consecutive failed attempts."""
        soft_device(server, clock)
        for i in range(19):
            assert server.validate("alice", "000000").status is ValidateStatus.REJECT
        assert not server.is_locked("alice")
        server.validate("alice", "000000")  # the 20th
        assert server.is_locked("alice")

    def test_locked_status_returned(self, server, clock):
        soft_device(server, clock)
        for _ in range(20):
            server.validate("alice", "000000")
        assert server.validate("alice", "123456").status is ValidateStatus.LOCKED

    def test_lockout_audited(self, server, clock):
        soft_device(server, clock)
        for _ in range(20):
            server.validate("alice", "000000")
        events = server.audit.lockout_events()
        assert len(events) == 1 and events[0].user_id == "alice"

    def test_clear_failcount_reactivates(self, server, clock):
        device = soft_device(server, clock)
        for _ in range(20):
            server.validate("alice", "000000")
        assert server.clear_failcount("alice") == 1
        assert not server.is_locked("alice")
        assert server.validate("alice", device.current_code()).ok

    def test_success_before_threshold_prevents_lockout(self, server, clock):
        device = soft_device(server, clock)
        for round_ in range(3):
            for _ in range(19):
                server.validate("alice", "000000")
            clock.advance(31)
            assert server.validate("alice", device.current_code()).ok
        assert not server.is_locked("alice")

    def test_custom_threshold(self, clock):
        server = OTPServer(
            clock=clock,
            config=OTPServerConfig(lockout_threshold=3),
            rng=random.Random(1),
        )
        server.enroll_soft("bob")
        for _ in range(3):
            server.validate("bob", "000000")
        assert server.is_locked("bob")


class TestSMSLifecycle:
    @pytest.fixture
    def sms_server(self, server):
        server.enroll_sms("carol", "5125551234")
        return server

    def test_null_request_triggers_send(self, sms_server, clock):
        result = sms_server.validate("carol", None)
        assert result.status is ValidateStatus.CHALLENGE_SENT
        clock.advance(10)
        assert sms_server.sms.latest("5125551234") is not None

    def test_repeat_request_does_not_resend(self, sms_server, clock):
        """While a code is active, LinOTP "will not forward to Twilio"."""
        sms_server.validate("carol", None)
        sent_before = sms_server.sms.messages_sent
        result = sms_server.validate("carol", None)
        assert result.status is ValidateStatus.CHALLENGE_PENDING
        assert sms_server.sms.messages_sent == sent_before

    def test_correct_code_accepted_and_consumed(self, sms_server, clock):
        sms_server.validate("carol", None)
        clock.advance(10)
        code = sms_server.sms.latest("5125551234").body.split()[-1]
        assert sms_server.validate("carol", code).ok
        assert not sms_server.validate("carol", code).ok

    def test_wrong_code_leaves_challenge_valid(self, sms_server, clock):
        """Section 3.2: on mismatch "the token code remains valid"."""
        sms_server.validate("carol", None)
        clock.advance(10)
        code = sms_server.sms.latest("5125551234").body.split()[-1]
        assert not sms_server.validate("carol", "000000").ok
        assert sms_server.validate("carol", code).ok

    def test_expired_code_rejected(self, sms_server, clock):
        """The delayed-SMS failure: delivery after the validity window."""
        sms_server.validate("carol", None)
        clock.advance(10)
        code = sms_server.sms.latest("5125551234").body.split()[-1]
        clock.advance(400)  # past the 300 s validity
        result = sms_server.validate("carol", code)
        assert not result.ok and "expired" in result.reason

    def test_new_challenge_after_expiry(self, sms_server, clock):
        sms_server.validate("carol", None)
        clock.advance(400)
        result = sms_server.validate("carol", None)
        assert result.status is ValidateStatus.CHALLENGE_SENT
        assert sms_server.sms.messages_sent == 2

    def test_code_without_challenge_rejected(self, sms_server):
        assert not sms_server.validate("carol", "123456").ok


class TestAdminOperations:
    def test_resync_drifted_token(self, server, clock):
        device = soft_device(server, clock)
        device.skew = 3000  # 50 minutes fast: validation fails
        assert not server.validate("alice", device.current_code()).ok
        code1 = device.current_code()
        code2 = device.code_at(clock.now() + 30)
        assert server.resync("alice", code1, code2)
        device_now = device.code_at(clock.now() + 60)
        clock.advance(60)
        assert server.validate("alice", device_now).ok

    def test_resync_wrong_codes_fails(self, server, clock):
        soft_device(server, clock)
        assert not server.resync("alice", "111111", "222222")

    def test_resync_sms_returns_false(self, server):
        server.enroll_sms("carol", "5125551234")
        assert not server.resync("carol", "111111", "222222")

    def test_disable_enable(self, server, clock):
        device = soft_device(server, clock)
        serial = server.user_tokens("alice")[0].serial
        server.disable_token(serial)
        assert server.validate("alice", device.current_code()).status is ValidateStatus.LOCKED
        server.enable_token(serial)
        clock.advance(31)
        assert server.validate("alice", device.current_code()).ok

    def test_unpair_removes_everything(self, server, clock):
        soft_device(server, clock)
        assert server.unpair("alice") == 1
        assert not server.has_pairing("alice")
        assert server.validate("alice", "123456").status is ValidateStatus.NO_TOKEN

    def test_unpair_clears_sms_challenge(self, server):
        server.enroll_sms("carol", "5125551234")
        server.validate("carol", None)
        server.unpair("carol")
        assert not server.db.table("challenges").exists("carol")

    def test_token_count_by_type(self, server, clock):
        server.enroll_soft("a")
        server.enroll_sms("b", "5125551111")
        server.enroll_static("c", "123456")
        assert server.token_count_by_type() == {"soft": 1, "sms": 1, "static": 1}


class TestAudit:
    def test_validation_audited(self, server, clock):
        device = soft_device(server, clock)
        server.validate("alice", device.current_code())
        server.validate("alice", "000000")
        assert server.audit.success_count("validate") == 1
        assert server.audit.failure_count("validate") >= 1

    def test_enrollment_audited(self, server):
        server.enroll_soft("alice")
        entries = server.audit.entries(user_id="alice", action="enroll")
        assert len(entries) == 1 and entries[0].detail == "soft"

    def test_audit_timestamps_from_clock(self, server, clock):
        server.enroll_soft("alice")
        entry = server.audit.entries()[-1]
        assert entry.timestamp == clock.now()


class TestConfigValidation:
    def test_defaults_valid(self):
        OTPServerConfig()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            OTPServerConfig(lockout_threshold=0)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            OTPServerConfig(totp_step=0)

    def test_invalid_digits(self):
        with pytest.raises(ValueError):
            OTPServerConfig(digits=4)

    def test_invalid_sms_validity(self):
        with pytest.raises(ValueError):
            OTPServerConfig(sms_code_validity=0)

"""Event-based (HOTP) tokens: counter sync, look-ahead, replay."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.crypto.hotp import hotp
from repro.otpserver.server import OTPServer, OTPServerConfig
from repro.otpserver.tokens import TokenType


class EventFob:
    """A press-counter device."""

    def __init__(self, secret):
        self.secret = secret
        self.counter = 0

    def press(self):
        code = hotp(self.secret, self.counter)
        self.counter += 1
        return code


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-10-05T09:00:00")


@pytest.fixture
def rig(clock):
    server = OTPServer(clock=clock, rng=random.Random(1))
    serial, secret = server.enroll_hotp("alice")
    return server, EventFob(secret), serial


class TestHOTPTokens:
    def test_enrollment(self, rig):
        server, _, serial = rig
        assert serial.startswith("LSHO")
        assert server.pairing_type("alice") is TokenType.HOTP

    def test_sequential_presses_validate(self, rig):
        server, fob, _ = rig
        for _ in range(5):
            assert server.validate("alice", fob.press()).ok

    def test_replay_rejected(self, rig):
        server, fob, _ = rig
        code = fob.press()
        assert server.validate("alice", code).ok
        assert not server.validate("alice", code).ok

    def test_skipped_presses_within_window(self, rig):
        """The user pressed the button in their pocket a few times."""
        server, fob, _ = rig
        for _ in range(7):  # codes never submitted
            fob.press()
        assert server.validate("alice", fob.press()).ok

    def test_beyond_look_ahead_rejected(self, rig):
        server, fob, _ = rig
        for _ in range(25):  # way past the 10-code window
            fob.press()
        assert not server.validate("alice", fob.press()).ok

    def test_skipped_codes_invalidated_after_later_match(self, rig):
        """Matching counter N consumes everything <= N."""
        server, fob, _ = rig
        early = fob.press()
        fob.press()
        late = fob.press()
        assert server.validate("alice", late).ok
        assert not server.validate("alice", early).ok

    def test_failcount_and_lockout_apply(self, clock):
        server = OTPServer(
            clock=clock, config=OTPServerConfig(lockout_threshold=5),
            rng=random.Random(2),
        )
        server.enroll_hotp("bob")
        for _ in range(5):
            server.validate("bob", "000000")
        assert server.is_locked("bob")

    def test_mutually_exclusive_with_other_pairings(self, rig):
        server, _, _ = rig
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            server.enroll_soft("alice")

    def test_custom_look_ahead(self, clock):
        server = OTPServer(
            clock=clock, config=OTPServerConfig(hotp_look_ahead=2),
            rng=random.Random(3),
        )
        _, secret = server.enroll_hotp("carol")
        fob = EventFob(secret)
        for _ in range(3):
            fob.press()
        assert not server.validate("carol", fob.press()).ok


class TestLookAheadEdges:
    """The exact fenceposts of the counter search window.

    The window is inclusive: with the server counter at ``c`` and
    ``look_ahead`` of ``w``, counters ``c .. c + w`` match and ``c + w + 1``
    does not.
    """

    LOOK_AHEAD = 10

    def _server(self, seed):
        clock = SimulatedClock.at("2016-10-05T09:00:00")
        server = OTPServer(
            clock=clock,
            config=OTPServerConfig(hotp_look_ahead=self.LOOK_AHEAD),
            rng=random.Random(seed),
        )
        _, secret = server.enroll_hotp("dave")
        return server, secret

    def test_code_at_window_end_validates(self):
        server, secret = self._server(4)
        assert server.validate("dave", hotp(secret, self.LOOK_AHEAD)).ok

    def test_code_one_past_window_rejects(self):
        server, secret = self._server(5)
        assert not server.validate("dave", hotp(secret, self.LOOK_AHEAD + 1)).ok
        # The failed probe must not move the counter: the window end
        # itself still validates afterwards.
        assert server.validate("dave", hotp(secret, self.LOOK_AHEAD)).ok

    def test_validated_code_advances_counter_past_match(self):
        server, secret = self._server(6)
        assert server.validate("dave", hotp(secret, self.LOOK_AHEAD)).ok
        # Counter is now look_ahead + 1: the matched code and everything
        # before it are consumed...
        assert not server.validate("dave", hotp(secret, self.LOOK_AHEAD)).ok
        assert not server.validate("dave", hotp(secret, 3)).ok
        # ...the next press is live, and the window slid with the counter.
        assert server.validate("dave", hotp(secret, self.LOOK_AHEAD + 1)).ok
        new_end = (self.LOOK_AHEAD + 2) + self.LOOK_AHEAD
        assert server.validate("dave", hotp(secret, new_end)).ok

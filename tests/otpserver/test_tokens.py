"""Token records and the Feitian hard-token batch model."""

import random

import pytest

from repro.common.errors import NotFoundError, ValidationError
from repro.otpserver.tokens import (
    HARD_TOKEN_LEAD_TIME_DAYS,
    HARD_TOKEN_SHIP_COUNTRIES,
    HardTokenBatch,
    TokenRecord,
    TokenType,
    random_static_code,
)


class TestTokenRecord:
    def test_describe(self):
        record = TokenRecord("S1", "u1", TokenType.SOFT, b"sealed")
        assert "S1" in record.describe()
        assert "soft" in record.describe()
        assert "active" in record.describe()

    def test_disabled_describe(self):
        record = TokenRecord("S1", "u1", TokenType.HARD, b"x", active=False)
        assert "disabled" in record.describe()


class TestHardTokenBatch:
    @pytest.fixture
    def batch(self):
        return HardTokenBatch(20, rng=random.Random(1))

    def test_size(self, batch):
        assert len(batch) == 20
        assert len(batch.serials()) == 20

    def test_serials_unique(self, batch):
        assert len(set(batch.serials())) == 20

    def test_preprogrammed_secrets(self, batch):
        """Fobs arrive with factory secrets: every serial has one, distinct."""
        secrets = {batch.secret_for(s) for s in batch.serials()}
        assert len(secrets) == 20
        assert all(len(batch.secret_for(s)) == 20 for s in batch.serials())

    def test_deterministic_with_seed(self):
        a = HardTokenBatch(5, rng=random.Random(7))
        b = HardTokenBatch(5, rng=random.Random(7))
        assert a.serials() == b.serials()
        assert [a.secret_for(s) for s in a.serials()] == [
            b.secret_for(s) for s in b.serials()
        ]

    def test_unknown_serial(self, batch):
        with pytest.raises(NotFoundError):
            batch.secret_for("FT00000000-9999")

    def test_shipping(self, batch):
        serial = batch.serials()[0]
        unit = batch.ship(serial, "Germany")
        assert unit.shipped_to == "Germany"
        assert serial not in batch.unshipped()

    def test_double_ship_rejected(self, batch):
        serial = batch.serials()[0]
        batch.ship(serial, "France")
        with pytest.raises(ValidationError, match="already shipped"):
            batch.ship(serial, "Spain")

    def test_purchase_cost_scales(self):
        small = HardTokenBatch(10, rng=random.Random(2))
        large = HardTokenBatch(100, rng=random.Random(3))
        assert large.purchase_cost() == pytest.approx(10 * small.purchase_cost())

    def test_zero_size_rejected(self):
        with pytest.raises(ValidationError):
            HardTokenBatch(0)

    def test_paper_constants(self):
        assert HARD_TOKEN_LEAD_TIME_DAYS == 35  # "5 weeks after initial purchase"
        assert "China" in HARD_TOKEN_SHIP_COUNTRIES
        assert "United States" in HARD_TOKEN_SHIP_COUNTRIES


class TestStaticCodes:
    def test_six_digits(self):
        code = random_static_code(random.Random(1))
        assert len(code) == 6 and code.isdigit()

    def test_deterministic(self):
        assert random_static_code(random.Random(5)) == random_static_code(
            random.Random(5)
        )

    def test_varies_with_seed(self):
        codes = {random_static_code(random.Random(i)) for i in range(50)}
        assert len(codes) > 40

"""The deprecated ``.message`` aliases are gone: ``.reason`` is the API.

The aliases shipped a DeprecationWarning in PR 2; this PR removes them.
These tests pin the removal so the alias cannot quietly reappear, and
that the canonical ``.ok``/``.reason`` pair still round-trips cleanly.
"""

import warnings

import pytest

from repro.crypto.totp import ValidationOutcome
from repro.otpserver import ValidateResult, ValidateStatus


class TestMessageAliasRemoved:
    def test_validate_result_has_no_message(self):
        result = ValidateResult(ValidateStatus.REJECT, reason="invalid token code")
        with pytest.raises(AttributeError):
            result.message

    def test_validation_outcome_has_no_message(self):
        outcome = ValidationOutcome(ok=False, reason="code replayed")
        with pytest.raises(AttributeError):
            outcome.message


class TestCanonicalAccessors:
    def test_reason_and_ok_round_trip(self):
        result = ValidateResult(ValidateStatus.REJECT, reason="invalid token code")
        assert not result.ok
        assert result.reason == "invalid token code"
        outcome = ValidationOutcome(ok=False, reason="code replayed")
        assert not outcome.ok
        assert outcome.reason == "code replayed"

    def test_no_deprecation_warnings_anywhere(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = ValidateResult(ValidateStatus.OK, reason="")
            assert result.ok and result.reason == ""
            outcome = ValidationOutcome(ok=True, offset=0)
            assert outcome.ok and outcome.reason == ""

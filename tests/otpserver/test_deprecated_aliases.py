"""The deprecated ``.message`` aliases: still functional, now warned."""

import warnings

import pytest

from repro.crypto.totp import ValidationOutcome
from repro.otpserver import ValidateResult, ValidateStatus


class TestValidateResultMessage:
    def test_alias_returns_reason(self):
        result = ValidateResult(ValidateStatus.REJECT, reason="invalid token code")
        with pytest.warns(DeprecationWarning, match="ValidateResult.message"):
            assert result.message == "invalid token code"
        assert result.reason == "invalid token code"

    def test_empty_reason_round_trips(self):
        result = ValidateResult(ValidateStatus.OK)
        with pytest.warns(DeprecationWarning):
            assert result.message == ""


class TestValidationOutcomeMessage:
    def test_alias_returns_reason(self):
        outcome = ValidationOutcome(ok=False, reason="code replayed")
        with pytest.warns(DeprecationWarning, match="ValidationOutcome.message"):
            assert outcome.message == "code replayed"
        assert outcome.reason == "code replayed"


class TestCanonicalAccessorsStayQuiet:
    def test_reason_and_ok_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = ValidateResult(ValidateStatus.OK, reason="")
            assert result.ok and result.reason == ""
            outcome = ValidationOutcome(ok=True, offset=0)
            assert outcome.ok and outcome.reason == ""

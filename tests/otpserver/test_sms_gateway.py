"""Twilio simulation: billing, delivery timing, the stall failure mode."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ValidationError
from repro.otpserver.sms_gateway import (
    CarrierProfile,
    SMSGateway,
    SMSPricing,
    is_us_number,
)


@pytest.fixture
def clock():
    return SimulatedClock(1_000_000.0)


@pytest.fixture
def gateway(clock):
    return SMSGateway(clock, rng=random.Random(1))


class TestNumbers:
    @pytest.mark.parametrize("number", ["5125551234", "15125551234", "+15125551234", "512-555-1234"])
    def test_us_numbers(self, number):
        assert is_us_number(number)

    @pytest.mark.parametrize("number", ["44123456789012", "12345", "+8613912345678"])
    def test_non_us_numbers(self, number):
        assert not is_us_number(number)


class TestBilling:
    def test_paper_rates(self):
        pricing = SMSPricing()
        assert pricing.monthly_flat == 1.00
        assert pricing.per_message_us == 0.0075

    def test_per_message_charge(self, gateway):
        gateway.send("5125551234", "code 123456")
        assert gateway.message_charges == pytest.approx(0.0075)

    def test_international_costs_more(self, gateway):
        gateway.send("+8613912345678", "code")
        assert gateway.message_charges > 0.0075

    def test_monthly_flat_accrues(self, gateway):
        gateway.bill_month()
        gateway.bill_month()
        gateway.send("5125551234", "x")
        assert gateway.total_cost() == pytest.approx(2.0 + 0.0075)

    def test_message_counter(self, gateway):
        for _ in range(5):
            gateway.send("5125551234", "x")
        assert gateway.messages_sent == 5


class TestDelivery:
    def test_not_delivered_immediately(self, gateway):
        gateway.send("5125551234", "code 111111")
        assert gateway.latest("5125551234") is None
        assert gateway.pending_count("5125551234") == 1

    def test_delivered_after_delay(self, gateway, clock):
        gateway.send("5125551234", "code 111111")
        clock.advance(10)
        message = gateway.latest("5125551234")
        assert message is not None and message.body == "code 111111"
        assert gateway.pending_count("5125551234") == 0

    def test_inbox_ordering(self, gateway, clock):
        gateway.send("5125551234", "first")
        clock.advance(10)
        gateway.send("5125551234", "second")
        clock.advance(10)
        inbox = gateway.inbox("5125551234")
        assert [m.body for m in inbox] == ["first", "second"]

    def test_inboxes_isolated(self, gateway, clock):
        gateway.send("5125551234", "for a")
        gateway.send("5125559999", "for b")
        clock.advance(10)
        assert gateway.latest("5125551234").body == "for a"
        assert gateway.latest("5125559999").body == "for b"

    def test_empty_number_rejected(self, gateway):
        with pytest.raises(ValidationError):
            gateway.send("", "x")


class TestCarrierStall:
    def test_stall_delays_past_code_validity(self, clock):
        """The Section 5 failure: the carrier retries and delivers the code
        in an expired state."""
        carrier = CarrierProfile(stall_probability=1.0, stall_delay=600.0)
        gateway = SMSGateway(clock, carrier=carrier, rng=random.Random(2))
        message = gateway.send("5125551234", "code 222222")
        assert message.attempts == 2  # the retry is recorded
        clock.advance(300)  # the code's validity window
        assert gateway.latest("5125551234") is None  # still in carrier limbo
        clock.advance(1000)
        assert gateway.latest("5125551234") is not None  # finally lands

    def test_stall_rate_approximately_respected(self, clock):
        carrier = CarrierProfile(stall_probability=0.2, base_delay=1.0, delay_jitter=0.0)
        gateway = SMSGateway(clock, carrier=carrier, rng=random.Random(3))
        stalls = sum(
            1 for _ in range(500) if gateway.send("5125551234", "x").attempts == 2
        )
        assert 60 <= stalls <= 140  # ~100 expected

"""Pairing session state machine and the mailer."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ValidationError
from repro.portal.mailer import Mailer
from repro.portal.pairing import PairingSession, PairingState


class TestPairingSession:
    def make(self):
        return PairingSession("pair-000001", "alice", "soft")

    def test_initial_state(self):
        session = self.make()
        assert session.state is PairingState.STARTED
        assert session.live

    def test_happy_path(self):
        session = self.make()
        session.to_awaiting("LSSO-000001")
        assert session.state is PairingState.AWAITING_CONFIRMATION
        session.confirm()
        assert session.state is PairingState.CONFIRMED
        assert not session.live

    def test_confirm_before_awaiting_rejected(self):
        with pytest.raises(ValidationError):
            self.make().confirm()

    def test_double_to_awaiting_rejected(self):
        session = self.make()
        session.to_awaiting("S1")
        with pytest.raises(ValidationError):
            session.to_awaiting("S2")

    def test_abort_from_any_live_state(self):
        session = self.make()
        session.abort()
        assert session.state is PairingState.ABORTED
        session2 = self.make()
        session2.to_awaiting("S1")
        session2.abort()
        assert session2.state is PairingState.ABORTED

    def test_abort_after_confirm_rejected(self):
        session = self.make()
        session.to_awaiting("S1")
        session.confirm()
        with pytest.raises(ValidationError):
            session.abort()

    def test_confirm_after_abort_rejected(self):
        session = self.make()
        session.to_awaiting("S1")
        session.abort()
        with pytest.raises(ValidationError):
            session.confirm()

    def test_double_confirm_rejected(self):
        session = self.make()
        session.to_awaiting("S1")
        session.confirm()
        with pytest.raises(ValidationError):
            session.confirm()


class TestMailer:
    def test_send_and_read(self):
        mailer = Mailer(SimulatedClock(100.0))
        mailer.send("a@x.edu", "subject", "body text")
        inbox = mailer.inbox("a@x.edu")
        assert len(inbox) == 1
        assert inbox[0].subject == "subject"
        assert inbox[0].sent_at == 100.0

    def test_latest(self):
        clock = SimulatedClock(0.0)
        mailer = Mailer(clock)
        mailer.send("a@x.edu", "first", "1")
        clock.advance(10)
        mailer.send("a@x.edu", "second", "2")
        assert mailer.latest("a@x.edu").subject == "second"

    def test_empty_inbox(self):
        mailer = Mailer(SimulatedClock(0.0))
        assert mailer.inbox("nobody@x.edu") == []
        assert mailer.latest("nobody@x.edu") is None

    def test_broadcast(self):
        mailer = Mailer(SimulatedClock(0.0))
        count = mailer.broadcast(["a@x", "b@x", "c@x"], "MFA announcement", "...")
        assert count == 3
        assert mailer.sent_count == 3
        assert mailer.latest("b@x").subject == "MFA announcement"

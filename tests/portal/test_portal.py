"""Portal flows: interstitial, three pairings, unpairing, signed URLs."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import NotFoundError, ValidationError
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.portal import HardTokenStore, UserPortal
from repro.portal.pairing import PairingState
from repro.qr import decode_matrix, parse_otpauth_uri


@pytest.fixture
def clock():
    return SimulatedClock.at("2016-08-15T10:00:00")


@pytest.fixture
def rig(clock):
    center = MFACenter(clock=clock, rng=random.Random(1))
    api = AdminAPI(center.otp, rng=random.Random(2))
    api.add_admin("portal-svc", "s3cret")
    client = AdminAPIClient(api, "portal-svc", "s3cret", rng=random.Random(3))
    portal = UserPortal(center.identity, client, clock=clock, rng=random.Random(4))
    center.create_user("alice", password="pw")

    class Rig:
        pass

    r = Rig()
    r.center, r.portal, r.clock = center, portal, clock
    return r


def scan_and_confirm(rig, username="alice"):
    """Helper: run the whole soft pairing flow; returns the device."""
    session, qr = rig.portal.begin_soft_pairing(username)
    parsed = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
    device = TOTPGenerator(secret=parsed.secret, clock=rig.clock)
    assert rig.portal.confirm_pairing(session.session_id, device.current_code())
    return device


class TestLoginAndInterstitial:
    def test_login_success(self, rig):
        login = rig.portal.login("alice", "pw")
        assert login.success

    def test_login_failure(self, rig):
        assert not rig.portal.login("alice", "wrong").success

    def test_unpaired_user_prompted(self, rig):
        assert rig.portal.login("alice", "pw").needs_mfa_prompt

    def test_reprompted_every_login(self, rig):
        rig.portal.login("alice", "pw")
        rig.portal.login("alice", "pw")
        assert rig.portal.interstitial_shown == 2

    def test_paired_user_not_prompted(self, rig):
        scan_and_confirm(rig)
        login = rig.portal.login("alice", "pw")
        assert not login.needs_mfa_prompt
        assert login.pairing_status.value == "soft"


class TestSoftPairing:
    def test_qr_contains_otpauth_uri(self, rig):
        _, qr = rig.portal.begin_soft_pairing("alice")
        uri = decode_matrix(qr.matrix).decode()
        parsed = parse_otpauth_uri(uri)
        assert parsed.account == "alice"
        assert parsed.issuer == rig.portal.issuer

    def test_full_pairing_flow(self, rig):
        scan_and_confirm(rig)
        assert rig.center.identity.get("alice").pairing_status.value == "soft"
        assert rig.center.otp.has_pairing(rig.center.uid_of("alice"))

    def test_wrong_code_keeps_session_retryable(self, rig):
        session, qr = rig.portal.begin_soft_pairing("alice")
        assert not rig.portal.confirm_pairing(session.session_id, "000000")
        assert session.state is PairingState.AWAITING_CONFIRMATION
        parsed = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        device = TOTPGenerator(secret=parsed.secret, clock=rig.clock)
        rig.clock.advance(31)
        assert rig.portal.confirm_pairing(session.session_id, device.current_code())

    def test_refresh_aborts_and_rolls_back(self, rig):
        session, _ = rig.portal.begin_soft_pairing("alice")
        rig.portal.refresh(session.session_id)
        assert session.state is PairingState.ABORTED
        assert not rig.center.otp.has_pairing(rig.center.uid_of("alice"))

    def test_confirm_after_refresh_rejected(self, rig):
        session, _ = rig.portal.begin_soft_pairing("alice")
        rig.portal.refresh(session.session_id)
        with pytest.raises(ValidationError):
            rig.portal.confirm_pairing(session.session_id, "123456")

    def test_double_confirm_rejected(self, rig):
        """Form resubmission hardening."""
        session, qr = rig.portal.begin_soft_pairing("alice")
        parsed = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        device = TOTPGenerator(secret=parsed.secret, clock=rig.clock)
        assert rig.portal.confirm_pairing(session.session_id, device.current_code())
        with pytest.raises(ValidationError):
            rig.portal.confirm_pairing(session.session_id, device.current_code())

    def test_new_flow_replaces_abandoned_flow(self, rig):
        first, _ = rig.portal.begin_soft_pairing("alice")
        second, qr = rig.portal.begin_soft_pairing("alice")
        assert first.state is PairingState.ABORTED
        parsed = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
        device = TOTPGenerator(secret=parsed.secret, clock=rig.clock)
        assert rig.portal.confirm_pairing(second.session_id, device.current_code())

    def test_unknown_session_rejected(self, rig):
        with pytest.raises(NotFoundError):
            rig.portal.confirm_pairing("pair-999999", "123456")


class TestSMSPairing:
    def test_ten_digit_number_required(self, rig):
        with pytest.raises(ValidationError, match="ten-digit"):
            rig.portal.begin_sms_pairing("alice", "12345")

    def test_formatted_numbers_accepted(self, rig):
        session = rig.portal.begin_sms_pairing("alice", "512-555-1234")
        assert session.state is PairingState.AWAITING_CONFIRMATION

    def test_full_sms_flow(self, rig):
        session = rig.portal.begin_sms_pairing("alice", "5125551234")
        rig.clock.advance(10)
        message = rig.center.sms_gateway.latest("5125551234")
        assert message is not None  # the portal triggered the send
        code = message.body.split()[-1]
        assert rig.portal.confirm_pairing(session.session_id, code)
        assert rig.center.identity.get("alice").pairing_status.value == "sms"


class TestHardPairing:
    def test_store_order_and_pair(self, rig):
        batch = rig.center.receive_hard_batch(5)
        store = HardTokenStore(batch, rig.clock)
        order = store.order("alice", "United Kingdom")
        assert order.fee_charged == 25.00
        assert store.delivered_serial("alice") is None  # still in transit
        rig.clock.advance(11 * 86400)
        serial = store.delivered_serial("alice")
        session = rig.portal.begin_hard_pairing("alice", serial)
        fob = TOTPGenerator(secret=batch.secret_for(serial), clock=rig.clock)
        assert rig.portal.confirm_pairing(session.session_id, fob.current_code())
        assert rig.center.identity.get("alice").pairing_status.value == "hard"

    def test_unknown_serial_rejected(self, rig):
        with pytest.raises((ValidationError, NotFoundError)):
            rig.portal.begin_hard_pairing("alice", "FT-nope")

    def test_store_inventory_exhaustion(self, rig):
        batch = rig.center.receive_hard_batch(1)
        store = HardTokenStore(batch, rig.clock)
        store.order("alice")
        rig.center.create_user("bob", password="pw")
        with pytest.raises(ValidationError, match="exhausted"):
            store.order("bob")

    def test_unsupported_country(self, rig):
        batch = rig.center.receive_hard_batch(2)
        store = HardTokenStore(batch, rig.clock)
        with pytest.raises(ValidationError, match="shipping"):
            store.order("alice", "Atlantis")

    def test_store_revenue(self, rig):
        batch = rig.center.receive_hard_batch(3)
        store = HardTokenStore(batch, rig.clock)
        store.order("alice")
        assert store.revenue == 25.00


class TestUnpairing:
    def test_soft_unpair_with_current_code(self, rig):
        device = scan_and_confirm(rig)
        session_id = rig.portal.begin_unpair("alice")
        rig.clock.advance(31)
        assert rig.portal.confirm_unpair(session_id, device.current_code())
        assert rig.center.identity.get("alice").pairing_status.value == "unpaired"

    def test_unpair_wrong_code_fails(self, rig):
        scan_and_confirm(rig)
        session_id = rig.portal.begin_unpair("alice")
        assert not rig.portal.confirm_unpair(session_id, "000000")
        assert rig.center.identity.get("alice").pairing_status.value == "soft"

    def test_sms_unpair_triggers_code_send(self, rig):
        session = rig.portal.begin_sms_pairing("alice", "5125551234")
        rig.clock.advance(10)
        code = rig.center.sms_gateway.latest("5125551234").body.split()[-1]
        rig.portal.confirm_pairing(session.session_id, code)
        sent_before = rig.center.sms_gateway.messages_sent
        unpair_id = rig.portal.begin_unpair("alice")
        assert rig.center.sms_gateway.messages_sent == sent_before + 1
        rig.clock.advance(10)
        code = rig.center.sms_gateway.latest("5125551234").body.split()[-1]
        assert rig.portal.confirm_unpair(unpair_id, code)

    def test_unpaired_user_cannot_unpair(self, rig):
        with pytest.raises(ValidationError, match="no device pairing"):
            rig.portal.begin_unpair("alice")

    def test_hard_unpair_requires_ticket(self, rig):
        batch = rig.center.receive_hard_batch(2)
        serial = batch.serials()[0]
        batch.ship(serial, "United States")
        session = rig.portal.begin_hard_pairing("alice", serial)
        fob = TOTPGenerator(secret=batch.secret_for(serial), clock=rig.clock)
        rig.portal.confirm_pairing(session.session_id, fob.current_code())
        with pytest.raises(ValidationError, match="ticket"):
            rig.portal.begin_unpair("alice")
        ticket = rig.portal.open_hard_unpair_ticket("alice", "fob broke")
        rig.portal.staff_resolve_hard_unpair(ticket.ticket_id)
        assert rig.center.identity.get("alice").pairing_status.value == "unpaired"
        assert ticket.closed

    def test_resolve_unknown_ticket(self, rig):
        with pytest.raises(NotFoundError):
            rig.portal.staff_resolve_hard_unpair("ticket-999999")


class TestOutOfBandUnpair:
    def test_email_link_flow(self, rig):
        scan_and_confirm(rig)
        url = rig.portal.request_unpair_email("alice")
        email = rig.portal.mailer.latest("alice@example.edu")
        assert email is not None and url in email.body
        assert rig.portal.visit_unpair_url(url)
        assert rig.center.identity.get("alice").pairing_status.value == "unpaired"

    def test_tampered_link_rejected(self, rig):
        rig.center.create_user("mallory", password="pw")
        scan_and_confirm(rig)
        url = rig.portal.request_unpair_email("alice")
        assert not rig.portal.visit_unpair_url(url.replace("alice", "mallory"))
        assert rig.center.identity.get("alice").pairing_status.value == "soft"

    def test_expired_link_rejected(self, rig):
        scan_and_confirm(rig)
        url = rig.portal.request_unpair_email("alice")
        rig.clock.advance(25 * 3600)  # past the 24 h TTL
        assert not rig.portal.visit_unpair_url(url)

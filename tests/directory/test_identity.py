"""Identity backend: accounts, shared uid, passwords, pairing notifications."""

import pytest

from repro.common.errors import NotFoundError, ValidationError
from repro.directory.identity import AccountClass, IdentityBackend, PairingStatus


@pytest.fixture
def identity():
    backend = IdentityBackend()
    backend.create_account("alice", "alice@utexas.edu", password="hunter2")
    return backend


class TestAccounts:
    def test_create_generates_ldap_entry(self, identity):
        account = identity.get("alice")
        entry = identity.ldap.get(account.dn)
        assert entry.first("uid") == "alice"

    def test_shared_unique_id(self, identity):
        """Section 3.1: the unique user ID is common to both databases."""
        account = identity.get("alice")
        entry = identity.ldap.get(account.dn)
        assert entry.first("uidNumber") == account.uid

    def test_uids_unique(self, identity):
        identity.create_account("bob", "b@x.edu")
        assert identity.get("alice").uid != identity.get("bob").uid

    def test_duplicate_username_rejected(self, identity):
        with pytest.raises(ValidationError):
            identity.create_account("alice", "other@x.edu")

    def test_get_missing_raises(self, identity):
        with pytest.raises(NotFoundError):
            identity.get("ghost")

    def test_contains(self, identity):
        assert "alice" in identity
        assert "ghost" not in identity

    def test_account_classes(self, identity):
        identity.create_account("gw", "g@x.edu", account_class=AccountClass.GATEWAY)
        assert identity.get("gw").account_class is AccountClass.GATEWAY
        assert [a.username for a in identity.accounts_by_class(AccountClass.GATEWAY)] == ["gw"]


class TestPasswords:
    def test_correct_password(self, identity):
        assert identity.check_password("alice", "hunter2")

    def test_wrong_password(self, identity):
        assert not identity.check_password("alice", "wrong")

    def test_unknown_user(self, identity):
        assert not identity.check_password("ghost", "x")

    def test_no_password_set(self, identity):
        identity.create_account("nopw", "n@x.edu")
        assert not identity.check_password("nopw", "")

    def test_inactive_account_rejected(self, identity):
        identity.get("alice").active = False
        assert not identity.check_password("alice", "hunter2")

    def test_set_password(self, identity):
        identity.set_password("alice", "new-secret")
        assert identity.check_password("alice", "new-secret")
        assert not identity.check_password("alice", "hunter2")

    def test_hash_not_plaintext(self, identity):
        assert "hunter2" not in identity.get("alice").password_hash

    def test_same_password_different_users_different_hash(self, identity):
        identity.create_account("bob", "b@x.edu", password="hunter2")
        assert identity.get("alice").password_hash != identity.get("bob").password_hash


class TestPublicKeys:
    def test_add_and_check(self, identity):
        identity.add_public_key("alice", "SHA256:abc")
        assert identity.has_public_key("alice", "SHA256:abc")

    def test_missing_key(self, identity):
        assert not identity.has_public_key("alice", "SHA256:nope")

    def test_idempotent_add(self, identity):
        identity.add_public_key("alice", "SHA256:abc")
        identity.add_public_key("alice", "SHA256:abc")
        assert identity.get("alice").public_keys == ["SHA256:abc"]


class TestPairingNotifications:
    def test_notify_updates_account_and_ldap(self, identity):
        identity.notify_pairing("alice", PairingStatus.SOFT)
        assert identity.get("alice").pairing_status is PairingStatus.SOFT
        assert identity.pairing_type("alice") is PairingStatus.SOFT

    def test_ldap_attribute_updated(self, identity):
        identity.notify_pairing("alice", PairingStatus.SMS)
        entry = identity.ldap.get(identity.get("alice").dn)
        assert entry.first("mfaPairingType") == "sms"

    def test_notifications_recorded(self, identity):
        identity.notify_pairing("alice", PairingStatus.HARD)
        assert ("alice", PairingStatus.HARD) in identity.pairing_notifications

    def test_unpair_notification(self, identity):
        identity.notify_pairing("alice", PairingStatus.SOFT)
        identity.notify_pairing("alice", PairingStatus.UNPAIRED)
        assert identity.pairing_type("alice") is PairingStatus.UNPAIRED

    def test_paired_fraction(self, identity):
        identity.create_account("bob", "b@x.edu")
        assert identity.paired_fraction() == 0.0
        identity.notify_pairing("alice", PairingStatus.SOFT)
        assert identity.paired_fraction() == pytest.approx(0.5)

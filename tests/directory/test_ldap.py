"""LDAP directory: entries, modify semantics, filters, scopes."""

import pytest

from repro.common.errors import NotFoundError
from repro.directory.ldap import LDAPDirectory, LDAPEntry, parse_filter


@pytest.fixture
def directory():
    d = LDAPDirectory()
    d.add(
        "uid=alice,ou=people,dc=center,dc=edu",
        {"uid": "alice", "mail": "alice@utexas.edu", "mfaPairingType": "soft",
         "objectClass": ["posixAccount", "inetOrgPerson"]},
    )
    d.add(
        "uid=bob,ou=people,dc=center,dc=edu",
        {"uid": "bob", "mail": "bob@tacc.utexas.edu", "mfaPairingType": "unpaired",
         "objectClass": ["posixAccount"]},
    )
    d.add(
        "uid=gateway01,ou=services,dc=center,dc=edu",
        {"uid": "gateway01", "accountClass": "gateway"},
    )
    return d


class TestEntries:
    def test_add_and_get(self, directory):
        entry = directory.get("uid=alice,ou=people,dc=center,dc=edu")
        assert entry.first("mail") == "alice@utexas.edu"

    def test_dn_normalization(self, directory):
        entry = directory.get("UID=Alice, OU=People, DC=center, DC=edu")
        assert entry.first("uid") == "alice"

    def test_duplicate_dn_rejected(self, directory):
        with pytest.raises(ValueError):
            directory.add("uid=alice,ou=people,dc=center,dc=edu", {})

    def test_get_missing_raises(self, directory):
        with pytest.raises(NotFoundError):
            directory.get("uid=ghost,ou=people,dc=center,dc=edu")

    def test_modify_replace(self, directory):
        directory.modify(
            "uid=bob,ou=people,dc=center,dc=edu", {"mfaPairingType": ["sms"]}
        )
        assert directory.get("uid=bob,ou=people,dc=center,dc=edu").first(
            "mfaPairingType"
        ) == "sms"

    def test_modify_delete_attribute(self, directory):
        directory.modify("uid=bob,ou=people,dc=center,dc=edu", {"mail": None})
        assert directory.get("uid=bob,ou=people,dc=center,dc=edu").get("mail") == []

    def test_delete_entry(self, directory):
        directory.delete("uid=bob,ou=people,dc=center,dc=edu")
        assert not directory.exists("uid=bob,ou=people,dc=center,dc=edu")

    def test_multivalued_attributes(self, directory):
        entry = directory.get("uid=alice,ou=people,dc=center,dc=edu")
        assert entry.get("objectClass") == ["posixAccount", "inetOrgPerson"]


class TestFilters:
    def test_equality(self):
        f = parse_filter("(uid=alice)")
        assert f(LDAPEntry("x", {"uid": ["alice"]}))
        assert not f(LDAPEntry("x", {"uid": ["bob"]}))

    def test_equality_case_insensitive(self):
        f = parse_filter("(uid=ALICE)")
        assert f(LDAPEntry("x", {"uid": ["alice"]}))

    def test_presence(self):
        f = parse_filter("(mail=*)")
        assert f(LDAPEntry("x", {"mail": ["a@b"]}))
        assert not f(LDAPEntry("x", {}))

    def test_substring(self):
        f = parse_filter("(mail=*@tacc.*)")
        assert f(LDAPEntry("x", {"mail": ["bob@tacc.utexas.edu"]}))
        assert not f(LDAPEntry("x", {"mail": ["alice@utexas.edu"]}))

    def test_prefix_substring(self):
        f = parse_filter("(uid=gate*)")
        assert f(LDAPEntry("x", {"uid": ["gateway01"]}))
        assert not f(LDAPEntry("x", {"uid": ["alice"]}))

    def test_and(self):
        f = parse_filter("(&(uid=alice)(mfaPairingType=soft))")
        assert f(LDAPEntry("x", {"uid": ["alice"], "mfapairingtype": ["soft"]}))
        assert not f(LDAPEntry("x", {"uid": ["alice"], "mfapairingtype": ["sms"]}))

    def test_or(self):
        f = parse_filter("(|(uid=alice)(uid=bob))")
        assert f(LDAPEntry("x", {"uid": ["bob"]}))
        assert not f(LDAPEntry("x", {"uid": ["carol"]}))

    def test_not(self):
        f = parse_filter("(!(mfaPairingType=unpaired))")
        assert f(LDAPEntry("x", {"mfapairingtype": ["soft"]}))
        assert not f(LDAPEntry("x", {"mfapairingtype": ["unpaired"]}))

    def test_nested_boolean(self):
        f = parse_filter("(&(objectClass=posixAccount)(!(uid=bob)))")
        assert f(LDAPEntry("x", {"objectclass": ["posixAccount"], "uid": ["alice"]}))
        assert not f(LDAPEntry("x", {"objectclass": ["posixAccount"], "uid": ["bob"]}))

    def test_implicit_parens(self):
        assert parse_filter("uid=alice")(LDAPEntry("x", {"uid": ["alice"]}))

    @pytest.mark.parametrize(
        "bad", ["(uid=alice", "(&(uid=a)", "(uid)", "(!(uid=a)", "(uid=a))"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_filter(bad)


class TestSearch:
    def test_sub_scope(self, directory):
        results = directory.search("dc=center,dc=edu", "(uid=*)")
        assert len(results) == 3

    def test_one_scope(self, directory):
        results = directory.search("ou=people,dc=center,dc=edu", "(uid=*)", scope="one")
        assert {e.first("uid") for e in results} == {"alice", "bob"}

    def test_base_scope(self, directory):
        results = directory.search(
            "uid=alice,ou=people,dc=center,dc=edu", "(uid=*)", scope="base"
        )
        assert len(results) == 1

    def test_filter_applied(self, directory):
        results = directory.search("dc=center,dc=edu", "(mfaPairingType=soft)")
        assert [e.first("uid") for e in results] == ["alice"]

    def test_invalid_scope(self, directory):
        with pytest.raises(ValueError):
            directory.search("dc=center,dc=edu", "(uid=*)", scope="tree")

    def test_query_counter(self, directory):
        before = directory.query_count
        directory.search("dc=center,dc=edu", "(uid=alice)")
        assert directory.query_count == before + 1

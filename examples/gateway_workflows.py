#!/usr/bin/env python3
"""Gateway and community accounts: automated workflows under MFA.

Section 2's challenge: science gateways and community accounts "negotiate
in an automated fashion on behalf of these users" and must keep running
when MFA becomes mandatory.  This example shows the paper's answer — the
exemption ACL — plus the mitigations interactive power-users adopted
(SSH multiplexing, moving cron onto login nodes), and what happens to an
unprepared scripted workflow.

Run:  python examples/gateway_workflows.py
"""

import random

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import AccountClass
from repro.ssh import KeyPair, SSHClient


def main() -> None:
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(7))
    stampede = center.add_system("stampede", mode="full")
    node = stampede.login_node()

    # --- A science gateway: public key + a scoped, permanent exemption ----
    center.create_user("sciencegw", account_class=AccountClass.GATEWAY)
    gateway_key = KeyPair.generate(comment="gateway service key",
                                   rng=random.Random(1))
    node.authorize_key("sciencegw", gateway_key)
    stampede.add_exemption(accounts="sciencegw", origins="203.0.113.0/24")
    print("exemption ACL now:")
    for rule in stampede.acl.rules():
        sign = "+" if rule.grant else "-"
        accounts = ",".join(rule.accounts) or "ALL"
        origins = ",".join(o.raw for o in rule.origins)
        expiry = rule.expiry.date().isoformat() if rule.expiry else "ALL"
        print(f"  {sign} : {accounts} : {origins} : {expiry}")

    gateway = SSHClient(source_ip="203.0.113.50")
    ok = gateway.run_batch(node, "sciencegw", 50, key=gateway_key)
    print(f"\ngateway ran {ok}/50 automated jobs — no MFA prompt, no password")

    rogue = SSHClient(source_ip="8.8.8.8")  # outside the exempted subnet
    result, _ = rogue.connect(node, "sciencegw", key=gateway_key)
    print(f"same key from outside the exempted range: "
          f"{'GRANTED' if result.success else 'DENIED'}")

    # --- An unprepared scripted workflow breaks at the deadline -----------
    center.create_user("datamover", password="pw")
    center.pair_soft("datamover")
    cron = SSHClient(source_ip="198.51.100.99")
    ok = cron.run_batch(node, "datamover", 10, password="pw")  # no token!
    print(f"\nscripted sftp loop without a token source: {ok}/10 succeeded")

    # --- Mitigation 1: SSH multiplexing ------------------------------------
    center.create_user("poweruser", password="pw")
    _, secret = center.pair_soft("poweruser")
    device = TOTPGenerator(secret=secret, clock=clock)
    mux = SSHClient(source_ip="198.51.100.100", multiplex=True)
    result, _ = mux.connect(node, "poweruser", password="pw",
                            token=device.current_code)
    ok = mux.run_batch(node, "poweruser", 50)
    print(f"\nmultiplexing: 1 MFA authentication, then {ok}/50 channels reused "
          f"({len(node.authlog.recent(3600, event='multiplexed_channel'))} "
          f"channel events logged)")

    # --- Mitigation 2: temporary variance while a group migrates ----------
    center.create_user("legacylab", password="pw")
    stampede.add_exemption(accounts="legacylab", origins="ALL",
                           expiry="2016-10-20")
    legacy = SSHClient(source_ip="198.51.100.101")
    result, _ = legacy.connect(node, "legacylab", password="pw")
    print(f"\ntemporary variance until 2016-10-20: "
          f"{'GRANTED' if result.success else 'DENIED'} today")
    clock.advance(30 * 86400)
    result, _ = legacy.connect(node, "legacylab", password="pw", token="000000")
    print(f"after the variance lapses: "
          f"{'GRANTED' if result.success else 'DENIED'} (no staff action needed)")

    # --- Internal traffic flows freely -------------------------------------
    internal = SSHClient(source_ip=f"{stampede.ip_prefix}.200")
    result, _ = internal.connect(node, "poweruser", password="pw")
    print(f"\ncompute-node -> login-node hop (internal subnet): "
          f"{'GRANTED' if result.success else 'DENIED'}, "
          f"exempt={result.session_items.get('mfa_exempt', False)}")


if __name__ == "__main__":
    main()

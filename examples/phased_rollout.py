#!/usr/bin/env python3
"""The two-month phased rollout, replayed (Section 5, Figures 3-6, Table 1).

Runs the seeded rollout simulation — real accounts, real token
enrollments, real ACLs and live enforcement-mode switches on Aug 10 /
Sep 6 / Oct 4 2016 — and prints the series behind each evaluation figure.

Run:  python examples/phased_rollout.py [population]
"""

import sys
from datetime import date

from repro.sim import RolloutConfig, RolloutSimulation


def sparkline(values, width=60):
    """Compress a daily series into a one-line terminal sparkline."""
    blocks = " .:-=+*#%@"
    if len(values) > width:
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    peak = max(max(values), 1)
    return "".join(blocks[min(int(v / peak * (len(blocks) - 1)), len(blocks) - 1)]
                   for v in values)


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"simulating {population} accounts, 2016-08-01 .. 2017-03-31 ...")
    sim = RolloutSimulation(RolloutConfig(population_size=population))
    m = sim.run()
    print(f"done. {m.real_logins_run} sampled logins ran through the real "
          f"SSH/PAM/RADIUS/OTP path; {m.real_login_mismatches} mismatches.\n")

    print("Figure 3 — unique MFA users/day")
    print("  ", sparkline(list(m.unique_mfa_users)))
    print("   ^Aug1        ^phase2(Sep6)   ^phase3(Oct4)        ^holiday   ^spring\n")

    print("Figure 4 — SSH traffic/day")
    print("   blue (ext MFA):    ", sparkline(list(m.external_mfa)))
    print("   red  (ext total):  ", sparkline(list(m.external_total)))
    print("   black (all):       ", sparkline(list(m.all_traffic)))
    p1 = m.mean_over(m.external_nonmfa, date(2016, 8, 10), date(2016, 9, 5))
    p2 = m.mean_over(m.external_nonmfa, date(2016, 9, 10), date(2016, 10, 3))
    print(f"   external non-MFA traffic: {p1:.0f}/day in phase 1 -> "
          f"{p2:.0f}/day in phase 2 ({100 * (1 - p2 / p1):.0f}% drop)\n")

    print("Figure 5 — support tickets")
    share_2016 = m.mfa_ticket_share(date(2016, 8, 10), date(2016, 12, 31))
    share_2017 = m.mfa_ticket_share(date(2017, 1, 1), date(2017, 3, 31))
    print(f"   MFA share of tickets Aug-Dec: {share_2016:.1%}  (paper: 6.7%)")
    print(f"   MFA share of tickets Jan-Mar: {share_2017:.1%}  (paper: 2.7%)\n")

    print("Figure 6 — new pairings/day")
    print("  ", sparkline(list(m.new_pairings)))
    for day, count in m.top_pairing_days(5):
        note = {date(2016, 9, 7): "day after phase 2 (paper rank 1)",
                date(2016, 10, 4): "mandatory deadline (paper rank 4)",
                date(2016, 8, 10): "announcement"}.get(day, "")
        print(f"   {day}  {count:4d}  {note}")
    print()

    print("Table 1 — pairing type breakdown (%)")
    paper = {"soft": 55.38, "sms": 40.22, "training": 2.97, "hard": 1.43}
    breakdown = m.pairing_breakdown_percent()
    print(f"   {'type':<10}{'measured':>10}{'paper':>8}")
    for kind in ("soft", "sms", "training", "hard"):
        print(f"   {kind:<10}{breakdown.get(kind, 0):>9.2f}{paper[kind]:>8.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: stand up the MFA infrastructure and log a user in.

Builds the whole deployment in-process — identity/LDAP back end, the OTP
server, a RADIUS farm, one HPC system with login nodes running the
Figure-1 PAM stack — then walks one researcher through soft-token pairing
(QR scan included) and an SSH login with password + token code.

Run:  python examples/quickstart.py
"""

import random

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.qr import decode_matrix, encode, build_otpauth_uri, parse_otpauth_uri
from repro.ssh import SSHClient


def main() -> None:
    # A simulated clock keeps the demo deterministic; pass no clock to use
    # wall time.
    clock = SimulatedClock.at("2016-10-05T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(42))
    stampede = center.add_system("stampede", login_nodes=2, mode="full")
    print("deployment: 3 RADIUS servers, system 'stampede' in full mode\n")

    # 1. An account is created (identity DB + LDAP entry, shared uid).
    center.create_user("cproctor", email="cproctor@tacc.utexas.edu",
                       password="correct horse battery staple")
    print("account created:", center.identity.get("cproctor").uid)

    # 2. Soft-token pairing: the portal would render this QR; the phone
    #    app scans it and starts generating codes.
    serial, secret = center.pair_soft("cproctor")
    uri = build_otpauth_uri(secret, issuer="HPC-Center", account="cproctor")
    qr = encode(uri, level="M")
    print(f"paired soft token {serial}; provisioning QR (version {qr.version}):\n")
    print(qr.to_text(dark="##", light="  ", border=1))
    scanned = parse_otpauth_uri(decode_matrix(qr.matrix).decode())
    phone = TOTPGenerator(secret=scanned.secret, clock=clock)
    print(f"\nphone app imported the secret; current code: {phone.current_code()}")

    # 3. SSH login: password first factor, token code second.
    client = SSHClient(source_ip="198.51.100.7")
    result, conversation = client.connect(
        stampede.login_node(),
        "cproctor",
        password="correct horse battery staple",
        token=phone.current_code,
    )
    print("\nSSH login:", "GRANTED" if result.success else "DENIED")
    print("  first factor: ", result.session_items.get("first_factor"))
    print("  second factor:", result.session_items.get("second_factor"))

    # 4. Replay protection: the same code is dead now.
    replay, _ = client.connect(
        stampede.login_node(), "cproctor",
        password="correct horse battery staple",
        token=phone.current_code(),  # the just-consumed code
    )
    print("replaying the same code:", "GRANTED" if replay.success else "DENIED")

    # 5. The audit trail saw everything.
    uid = center.uid_of("cproctor")
    events = center.otp.audit.entries(user_id=uid)
    print(f"\naudit log for {uid}: "
          f"{[(e.action, e.success) for e in events]}")


if __name__ == "__main__":
    main()

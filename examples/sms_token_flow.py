#!/usr/bin/env python3
"""The SMS token end to end — pairing, login, pricing, and the delayed-SMS
failure mode (Sections 3.3, 3.5, 5).

Walks the full out-of-band path: portal pairing with a confirmation text,
an SSH login where the "null request" triggers Twilio, the "SMS already
sent" guard, per-message billing, and the carrier stall that delivers a
token code after it has expired.

Run:  python examples/sms_token_flow.py
"""

import random

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.otpserver.sms_gateway import CarrierProfile, SMSGateway
from repro.otpserver.server import OTPServer
from repro.portal import UserPortal
from repro.ssh import SSHClient


def main() -> None:
    clock = SimulatedClock.at("2016-09-20T10:00:00")
    center = MFACenter(clock=clock, rng=random.Random(3))
    stampede = center.add_system("stampede", mode="full")

    api = AdminAPI(center.otp, rng=random.Random(4))
    api.add_admin("portal-svc", "s3cret")
    portal = UserPortal(
        center.identity,
        AdminAPIClient(api, "portal-svc", "s3cret", rng=random.Random(5)),
        clock=clock,
    )

    # --- pairing through the portal ---------------------------------------
    center.create_user("texter", email="texter@utexas.edu", password="pw")
    session = portal.begin_sms_pairing("texter", "512-555-0142")
    clock.advance(8)  # carrier delivery
    confirmation = center.sms_gateway.latest("5125550142")
    print("pairing SMS received:", confirmation.body)
    code = confirmation.body.split()[-1]
    print("pairing confirmed:", portal.confirm_pairing(session.session_id, code))

    # --- login: the null request triggers the text -------------------------
    def read_sms():
        clock.advance(8)
        return center.sms_gateway.latest("5125550142").body.split()[-1]

    client = SSHClient(source_ip="198.51.100.70")
    result, conversation = client.connect(
        stampede.login_node(), "texter",
        password="pw", extra_answers={"token code": read_sms},
    )
    print("\nSSH login:", "GRANTED" if result.success else "DENIED")
    for message in conversation.displayed:
        print("  server said:", message)

    # --- "SMS already sent" guard ------------------------------------------
    uid = center.uid_of("texter")
    center.otp.validate(uid, None)  # first null request: sends
    second = center.otp.validate(uid, None)  # second: guarded
    print("\nsecond request while a code is active ->", second.reason)

    # --- billing -------------------------------------------------------------
    gateway = center.sms_gateway
    gateway.bill_month()
    print(f"\nTwilio bill: {gateway.messages_sent} messages, "
          f"${gateway.total_cost():.4f} "
          f"(flat $1/month + $0.0075/message)")

    # --- the delayed-SMS failure (Section 5) --------------------------------
    print("\n--- carrier stall reproduction ---")
    stall_clock = SimulatedClock.at("2016-09-20T10:00:00")
    stalled_gateway = SMSGateway(
        stall_clock,
        carrier=CarrierProfile(stall_probability=1.0, stall_delay=700.0),
        rng=random.Random(6),
    )
    otp = OTPServer(clock=stall_clock, sms_gateway=stalled_gateway,
                    rng=random.Random(7))
    otp.enroll_sms("unlucky", "5125559999")
    otp.validate("unlucky", None)
    print("code requested; carrier is sitting on the message ...")
    stall_clock.advance(1400)  # code validity is 300 s
    late = stalled_gateway.latest("5125559999")
    print(f"message finally delivered after "
          f"{late.deliver_at - late.sent_at:.0f}s "
          f"(retries: {late.attempts})")
    result = otp.validate("unlucky", late.body.split()[-1])
    print(f"entering the late code -> {result.reason!r}")
    retry = otp.validate("unlucky", None)
    print(f"user requests a fresh code -> {retry.status.value}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Growing the infrastructure: geolocation + dynamic risk assessment.

The paper's conclusion says the software "is ready to be grown to
incorporate new features including geolocation services, dynamic risk
assessment, or biometric security."  This example grows it: a PAM stack
with a risk gate and geo-velocity checks in front of the Figure-1 modules,
demonstrating impossible-travel detection, watchlists, and step-up
authentication that overrides an exemption when a service account shows
up from an origin it has never used.

Run:  python examples/risk_and_geolocation.py
"""

import random

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.extensions.geolocation import (
    GeoDatabase,
    GeoVelocityMonitor,
    PamGeoCheckModule,
)
from repro.extensions.risk import (
    PamRiskGateModule,
    RiskAwareExemptionModule,
    RiskEngine,
)
from repro.pam.acl import InMemoryExemptionACL
from repro.pam.conversation import ScriptedConversation
from repro.pam.framework import PAMSession, PAMStack, PAMResult
from repro.pam.modules.token import MFATokenModule
from repro.pam.modules.unix_password import UnixPasswordModule


def attempt(stack, clock, username, ip, responses):
    session = PAMSession(
        username=username, remote_ip=ip,
        conversation=ScriptedConversation(list(responses)), clock=clock,
    )
    result = stack.authenticate(session)
    return result, session


def main() -> None:
    clock = SimulatedClock.at("2016-11-15T14:00:00")
    center = MFACenter(clock=clock, rng=random.Random(13))
    center.add_system("stampede")

    geo = GeoDatabase.with_sample_data()
    monitor = GeoVelocityMonitor(geo, clock)
    engine = RiskEngine(clock=clock, geo_monitor=None, step_up_threshold=0.2)
    acl = InMemoryExemptionACL("+ : sciencegw : ALL : ALL\n", clock=clock)

    center.create_user("alice", password="pw")
    _, secret = center.pair_soft("alice")
    device = TOTPGenerator(secret=secret, clock=clock)
    center.create_user("sciencegw", password="gw-pw")

    # The grown stack: risk gate -> geo check -> password -> risk-aware
    # exemption -> token.
    stack = PAMStack("sshd")
    stack.append("required", PamRiskGateModule(engine))
    stack.append("[success=ok ignore=ignore default=bad]",
                 PamGeoCheckModule(geo, monitor=monitor, denied_countries=[]))
    stack.append("requisite", UnixPasswordModule(center.identity))
    stack.append("sufficient", RiskAwareExemptionModule(acl))
    stack.append("requisite", MFATokenModule(
        ldap=center.identity.ldap,
        radius=center.new_radius_client("10.3.1.5"),
        mode="full",
    ))

    # --- 1. Normal login from Austin ---------------------------------------
    result, session = attempt(stack, clock, "alice", "129.114.7.7",
                              ["pw", device.current_code()])
    engine.record_success("alice", "129.114.7.7")
    print(f"Austin login: {result.value}  "
          f"(risk={session.items['risk_score']:.2f}, "
          f"geo={session.items.get('geo_city')})")

    # --- 2. Impossible travel: Beijing ten minutes later --------------------
    clock.advance(600)
    result, session = attempt(stack, clock, "alice", "203.0.113.9",
                              ["pw", device.current_code()])
    print(f"Beijing 10 min later: {result.value}  "
          f"(implied speed {session.items.get('geo_speed_kmh', 0):.0f} km/h)")
    for message in session.conversation.messages():
        print("   server said:", message)

    # --- 3. A real itinerary: Geneva 14 hours later --------------------------
    clock.advance(14 * 3600)
    result, session = attempt(stack, clock, "alice", "192.0.2.10",
                              ["pw", device.current_code()])
    print(f"Geneva 14 h later: {result.value}  "
          f"({session.items.get('geo_speed_kmh', 0):.0f} km/h — a plane)")

    # --- 4. Watchlisted network + failure burst -> outright deny -------------
    clock.advance(3600)
    engine.add_watchlist("100.64.0.0/10")
    for _ in range(3):
        engine.record_failure("alice")  # a credential-stuffing burst
    result, session = attempt(stack, clock, "alice", "100.64.1.1",
                              ["pw", device.current_code()])
    print(f"\nwatchlisted net after 3 failures: {result.value}  "
          f"(risk={session.items['risk_score']:.2f}, "
          f"signals={session.items['risk_signals']})")

    # --- 5. Step-up: the exempted gateway from a novel origin ----------------
    engine.record_success("sciencegw", "129.114.50.1")
    clock.advance(3600)
    result, session = attempt(stack, clock, "sciencegw", "129.114.50.1", ["gw-pw"])
    print(f"\ngateway from its usual origin: {result.value}  "
          f"(exempt={session.items.get('mfa_exempt', False)})")
    clock.advance(3600)
    result, session = attempt(stack, clock, "sciencegw", "198.51.100.77",
                              ["gw-pw", "000000"])
    print(f"gateway from a NOVEL origin: {result.value}  "
          f"(step_up={session.items.get('risk_step_up', False)} -> "
          f"exemption suppressed, token demanded)")
    assert result is PAMResult.AUTH_ERR  # no valid token -> denied


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The hard-token (Feitian c200) lifecycle (Sections 3.3, 3.5).

Follows a fob from batch manufacture through the web store, international
shipping, serial-number pairing, daily logins, clock drift and admin
resync, to the support-ticket retirement path — plus a training-account
static-code session, the fourth (non-public) token type.

Run:  python examples/hard_token_lifecycle.py
"""

import random

from repro.common.clock import SimulatedClock
from repro.core import MFACenter
from repro.crypto.totp import TOTPGenerator
from repro.directory.identity import AccountClass
from repro.otpserver.admin_api import AdminAPI, AdminAPIClient
from repro.portal import HardTokenStore, UserPortal
from repro.ssh import SSHClient


def main() -> None:
    clock = SimulatedClock.at("2016-08-01T09:00:00")
    center = MFACenter(clock=clock, rng=random.Random(9))
    stampede = center.add_system("stampede", mode="full")
    api = AdminAPI(center.otp, rng=random.Random(10))
    api.add_admin("portal-svc", "s3cret")
    portal = UserPortal(
        center.identity,
        AdminAPIClient(api, "portal-svc", "s3cret", rng=random.Random(11)),
        clock=clock,
    )

    # --- batch purchase: pre-programmed secrets arrive with the fobs -------
    batch = center.receive_hard_batch(50)
    print(f"batch of {len(batch)} {batch.vendor} {batch.model} fobs imported; "
          f"purchase cost ${batch.purchase_cost():,.2f}")
    print(f"inventory now holds {len(center.otp.hard_inventory_serials())} "
          f"unassigned serials")

    # --- the web store: $25, shipped to Switzerland -------------------------
    store = HardTokenStore(batch, clock)
    center.create_user("cernuser", email="cernuser@cern.ch", password="pw")
    order = store.order("cernuser", "Switzerland")
    print(f"\norder {order.order_id}: serial {order.serial} -> {order.country}, "
          f"${order.fee_charged:.2f} charged")
    print("delivered yet?", store.delivered_serial("cernuser") is not None)
    clock.advance(10 * 86400)
    serial = store.delivered_serial("cernuser")
    print(f"...10 days later: fob {serial} delivered")

    # --- pairing by the serial on the back of the fob -----------------------
    session = portal.begin_hard_pairing("cernuser", serial)
    fob = TOTPGenerator(secret=batch.secret_for(serial), clock=clock)
    print("pairing confirmed with the fob's current code:",
          portal.confirm_pairing(session.session_id, fob.current_code()))

    # --- daily logins ---------------------------------------------------------
    client = SSHClient(source_ip="192.0.2.33")
    clock.advance(31)
    result, _ = client.connect(stampede.login_node(), "cernuser",
                               password="pw", token=fob.current_code)
    print("SSH login with the fob:", "GRANTED" if result.success else "DENIED")

    # --- a year of clock drift, fixed by admin resync ------------------------
    fob.skew = 1500  # 25 minutes fast: outside the 300 s tolerance
    clock.advance(31)
    result, _ = client.connect(stampede.login_node(), "cernuser",
                               password="pw", token=fob.current_code)
    print(f"\nfob drifted {fob.skew:.0f}s:",
          "GRANTED" if result.success else "DENIED")
    uid = center.uid_of("cernuser")
    resynced = center.otp.resync(
        uid, fob.current_code(), fob.code_at(clock.now() + 30)
    )
    print("admin resync from two consecutive codes:", resynced)
    clock.advance(60)
    result, _ = client.connect(stampede.login_node(), "cernuser",
                               password="pw", token=fob.current_code)
    print("login after resync:", "GRANTED" if result.success else "DENIED")

    # --- retirement: hard tokens are disabled via support ticket -------------
    ticket = portal.open_hard_unpair_ticket("cernuser", "leaving the project")
    portal.staff_resolve_hard_unpair(ticket.ticket_id)
    print(f"\nticket {ticket.ticket_id} resolved: {ticket.resolution}")

    # --- the fourth token type: training accounts ----------------------------
    print("\n--- training workshop ---")
    center.create_user("train01", password="workshop",
                       account_class=AccountClass.TRAINING)
    code = center.pair_training("train01")
    print(f"staff assigned static code {code} to train01 for today's session")
    attendee = SSHClient(source_ip="198.51.100.201")
    result, _ = attendee.connect(stampede.login_node(), "train01",
                                 password="workshop", token=code)
    print("attendee login:", "GRANTED" if result.success else "DENIED")
    new_code = center.pair_training("train01")  # rotated after the session
    print(f"session over; code regenerated ({code} -> {new_code})")
    clock.advance(31)
    result, _ = attendee.connect(stampede.login_node(), "train01",
                                 password="workshop", token=code)
    print("yesterday's code today:", "GRANTED" if result.success else "DENIED")


if __name__ == "__main__":
    main()

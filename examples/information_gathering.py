#!/usr/bin/env python3
"""Section 4.1: the pre-MFA information-gathering campaign.

Replays the months before the rollout: an entry-audit script logs every
successful login with TTY state, staff aggregate the volume, rank users,
use their own activity as the threshold, filter out known gateways, and
produce the outreach list — then the workload-manager mitigations that
those conversations produced (mail-on-completion, job dependencies) are
demonstrated against the polling workflow they replaced.

Run:  python examples/information_gathering.py
"""

import random

from repro.common.clock import SimulatedClock
from repro.sim.population import Population
from repro.sim.preaudit import run_information_gathering
from repro.workload.scheduler import BatchScheduler, MailEvent


def main() -> None:
    population = Population(1000, seed=41)
    print(f"observing {len(population)} accounts for 60 days "
          f"(pre-MFA entry-audit logging)...")
    result = run_information_gathering(population, days=60, seed=42)

    print(f"\ncollected {result.total_entries:,} entry events")
    count, share = result.automated_user_count, result.automated_event_share
    print(f"accounts that mostly log in without a TTY: {count} "
          f"— responsible for {share:.0%} of all entries")
    print(f"top 10% of accounts produce {result.top_decile_share:.0%} of entries "
          f'("a minority of users ... the majority of entries")')

    print(f"\nstaff threshold (most active staff member): "
          f"{result.staff_threshold:,} events")
    print(f"known gateway/community accounts filtered: "
          f"{len(result.service_accounts)}")
    print(f"outreach target list ({len(result.targets)} accounts):")
    for target in result.targets[:8]:
        print(f"   {target.username:<14} {target.total_events:>8,} events   "
              f"{target.notty_fraction:>4.0%} TTY-less   "
              f"{target.distinct_ips} origin(s)")

    suspects = result.auditor.shared_account_suspects()
    if suspects:
        print(f"\npossible shared accounts (many origins): {suspects[:5]}")

    # --- the mitigation staff proposed in those conversations ----------------
    print("\n--- replacing cron polling with scheduler mail ---")
    clock = SimulatedClock.at("2016-09-01T08:00:00")
    scheduler = BatchScheduler(clock=clock, nodes=8, rng=random.Random(7))
    # A five-stage pipeline submitted up front with dependencies: zero
    # interactive decisions while it runs.
    previous = None
    for stage in range(5):
        previous = scheduler.submit(
            "datamover", f"pipeline-stage{stage}", wall_seconds=2 * 3600,
            depends_on=[previous.job_id] if previous else None,
            mail_events={MailEvent.END, MailEvent.FAIL},
            mail_to="datamover@utexas.edu",
        )
    polls_avoided = 0
    while scheduler.squeue("datamover"):
        scheduler.tick()
        polls_avoided += 1  # what the old cron would have done
        clock.advance(300)
    print(f"pipeline of 5 dependent jobs completed; states: {scheduler.states()}")
    print(f"emails sent: {scheduler.mails_sent}; "
          f"SSH polling logins avoided: {polls_avoided}")
    inbox = scheduler.mailer.inbox("datamover@utexas.edu")
    print("last notification:", inbox[-1].subject)


if __name__ == "__main__":
    main()
